"""Observability subsystem tests: tracer + sinks, phase profiler,
metrics registry, and the invariants linking them to the allocators."""

import io

import pytest

from repro.allocators import (
    GraphColoring,
    PolettoLinearScan,
    SecondChanceBinpacking,
    TwoPassBinpacking,
)
from repro.ir.instr import Op, SpillPhase
from repro.ir.printer import print_module
from repro.lang import compile_minic
from repro.obs import (
    NULL_TRACER,
    EventKind,
    JsonlSink,
    MetricsRegistry,
    PhaseProfiler,
    RingBufferSink,
    TextSink,
    TraceEvent,
    Tracer,
    read_jsonl_trace,
)
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.target import tiny

#: Enough simultaneously-live values (plus a call) to force spilling on
#: the 4-register tiny machine, so every event kind has a chance to fire.
SPILLY = """
func int helper(int x) {
  return x * 2 + 1;
}

func int main() {
  int a = 1; int b = 2; int c = 3; int d = 4;
  int e = 5; int f = 6; int g = 7; int h = 8;
  int total = 0;
  for (int i = 0; i < 4; i = i + 1) {
    total = total + a + b + c + d + e + f + g + h + helper(i);
  }
  print total;
  print a + h;
  return 0;
}
"""


def spilly_module(machine):
    return compile_minic(SPILLY, machine)


def traced_run(allocator, extra_sinks=()):
    machine = tiny(4, 4)
    module = spilly_module(machine)
    ring = RingBufferSink(capacity=100_000)
    tracer = Tracer([ring, *extra_sinks])
    result = run_allocator(module, allocator, machine, trace=tracer)
    return machine, result, tracer, ring


# ----------------------------------------------------------------------
# Tracer core and sinks.
# ----------------------------------------------------------------------
class TestTracer:
    def test_null_tracer_is_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(EventKind.ASSIGN, temp="t1", reg="r1")
        assert not NULL_TRACER.counts

    def test_untraced_run_records_zero_events(self):
        machine = tiny(4, 4)
        result = run_allocator(spilly_module(machine),
                               SecondChanceBinpacking(), machine)
        assert result.stats.trace is NULL_TRACER
        assert not result.stats.trace.counts

    def test_tracer_enabled_iff_it_has_sinks(self):
        assert Tracer([]).enabled is False
        assert Tracer([RingBufferSink()]).enabled is True

    def test_ambient_location(self):
        ring = RingBufferSink()
        tr = Tracer([ring])
        tr.set_location(fn="f")
        tr.set_location(block="B1")
        tr.emit(EventKind.ASSIGN, point=3, temp="t1", reg="r2")
        tr.set_location(fn="g")  # a new function resets the block
        tr.emit(EventKind.EVICT, temp="t9")
        first, second = ring.events()
        assert (first.fn, first.block, first.point) == ("f", "B1", 3)
        assert (second.fn, second.block) == ("g", None)

    def test_ring_buffer_keeps_most_recent(self):
        ring = RingBufferSink(capacity=2)
        tr = Tracer([ring])
        tr.set_location(fn="f")
        for point in range(5):
            tr.emit(EventKind.ASSIGN, point=point)
        assert [e.point for e in ring.events()] == [3, 4]
        assert tr.counts[EventKind.ASSIGN] == 5

    def test_text_sink_line_format(self):
        stream = io.StringIO()
        tr = Tracer([TextSink(stream)])
        tr.set_location(fn="f", block=None)
        tr.set_location(block="B2")
        tr.emit(EventKind.EVICT, point=7, temp="t3", reg="r1",
                detail="store")
        line = stream.getvalue().strip()
        assert "f/B2@7" in line
        assert "evict" in line
        assert "t3" in line and "-> r1" in line and "[store]" in line

    def test_event_json_round_trip(self):
        event = TraceEvent(EventKind.HOLE_REUSE, fn="f", block="B",
                           point=12, temp="t4", reg="r3", detail="x")
        assert TraceEvent.from_json(event.to_json()) == event
        sparse = TraceEvent(EventKind.ASSIGN, fn="f")
        assert TraceEvent.from_json(sparse.to_json()) == sparse

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TraceEvent.from_json({"kind": "nonsense", "fn": "f"})


# ----------------------------------------------------------------------
# JSONL interchange: emit -> parse -> replay.
# ----------------------------------------------------------------------
class TestJsonlRoundTrip:
    def test_replay_counts_equal_live_counts(self):
        stream = io.StringIO()
        _, _, tracer, ring = traced_run(SecondChanceBinpacking(),
                                        extra_sinks=[JsonlSink(stream)])
        assert sum(tracer.counts.values()) > 0
        replayed = list(read_jsonl_trace(stream.getvalue().splitlines()))
        assert replayed == ring.events()
        by_kind = {}
        for event in replayed:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        assert by_kind == dict(tracer.counts)

    def test_blank_lines_are_skipped(self):
        event = TraceEvent(EventKind.ASSIGN, fn="f", temp="t1", reg="r1")
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.emit(event)
        text = "\n" + stream.getvalue() + "\n\n"
        assert list(read_jsonl_trace(text.splitlines())) == [event]


# ----------------------------------------------------------------------
# Trace/IR invariants (the acceptance mapping).
# ----------------------------------------------------------------------
ALL_ALLOCATORS = [SecondChanceBinpacking, TwoPassBinpacking, GraphColoring,
                  PolettoLinearScan]


class TestTraceMatchesAllocatedCode:
    @pytest.mark.parametrize("factory", ALL_ALLOCATORS)
    def test_tracing_does_not_perturb_allocation(self, factory):
        machine = tiny(4, 4)
        module = spilly_module(machine)
        plain = run_allocator(module, factory(), machine)
        traced = run_allocator(module, factory(), machine,
                               trace=Tracer([RingBufferSink()]))
        assert print_module(plain.module) == print_module(traced.module)
        assert outputs_equal(simulate(plain.module, machine).output,
                             simulate(traced.module, machine).output)

    @pytest.mark.parametrize("factory", ALL_ALLOCATORS)
    def test_spill_events_match_spill_instructions(self, factory):
        """Every ``spill_store_emitted`` / ``second_chance_reload`` event
        corresponds to exactly one EVICT-phase store/load in the final IR
        (the peephole only deletes moves, so spill code survives)."""
        _, result, tracer, _ = traced_run(factory())
        stores = loads = 0
        for fn in result.module.functions.values():
            for instr in fn.instructions():
                if instr.spill_phase is SpillPhase.EVICT:
                    if instr.op is Op.STS:
                        stores += 1
                    elif instr.op is Op.LDS:
                        loads += 1
        assert tracer.counts[EventKind.SPILL_STORE_EMITTED] == stores
        assert tracer.counts[EventKind.SECOND_CHANCE_RELOAD] == loads
        assert stores > 0 and loads > 0  # the program must actually spill

    def test_resolution_events_match_resolve_instructions(self):
        _, result, tracer, _ = traced_run(SecondChanceBinpacking())
        resolve_instrs = sum(
            1 for fn in result.module.functions.values()
            for instr in fn.instructions()
            if instr.spill_phase is SpillPhase.RESOLVE)
        assert tracer.counts[EventKind.RESOLUTION_EDGE_FIX] == resolve_instrs

    def test_binpack_emits_its_signature_events(self):
        _, _, tracer, _ = traced_run(SecondChanceBinpacking())
        for kind in (EventKind.ASSIGN, EventKind.EVICT,
                     EventKind.SECOND_CHANCE_RELOAD,
                     EventKind.SPILL_STORE_EMITTED):
            assert tracer.counts[kind] > 0, kind


# ----------------------------------------------------------------------
# Phase profiler.
# ----------------------------------------------------------------------
class TestProfiler:
    def test_nesting_splits_self_from_total(self):
        prof = PhaseProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                sum(range(1000))
        outer, inner = prof.phases["outer"], prof.phases["inner"]
        assert outer.calls == inner.calls == 1
        assert inner.depth == 1 and inner.parent == "outer"
        assert outer.total_ns >= inner.total_ns
        # Parent's self time is its inclusive time minus the children's.
        assert outer.self_ns == outer.total_ns - inner.total_ns
        assert prof.seconds("never-ran") == 0.0

    def test_span_seconds_readable_after_exit(self):
        prof = PhaseProfiler()
        with prof.phase("p") as span:
            pass
        assert span.seconds >= 0.0
        assert span.seconds == pytest.approx(prof.seconds("p"))

    def test_self_seconds_total_equals_root_inclusive(self):
        prof = PhaseProfiler()
        with prof.phase("root"):
            with prof.phase("a"):
                pass
            with prof.phase("b"):
                with prof.phase("c"):
                    pass
        # Self times partition the root's inclusive time by construction.
        assert prof.self_seconds_total() == pytest.approx(
            prof.seconds("root"), abs=1e-9)

    def test_merge_accumulates(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        with a.phase("p"):
            pass
        with b.phase("p"):
            pass
        with b.phase("q"):
            pass
        a.merge(b)
        assert a.phases["p"].calls == 2
        assert a.phases["q"].calls == 1

    def test_render_orders_parents_before_children(self):
        prof = PhaseProfiler()
        with prof.phase("setup"):
            with prof.phase("setup.cfg"):
                pass
        with prof.phase("allocate"):
            pass
        text = prof.render(title="t")
        # Rows follow the title, header, and separator lines.
        lines = text.splitlines()
        names = [line.split()[0] for line in lines[3:]]
        assert names == ["setup", "setup.cfg", "allocate"]

    def test_profile_reconciles_with_alloc_seconds(self):
        """The acceptance criterion: the profile's ``allocate`` phase and
        ``AllocationStats.alloc_seconds`` agree within 1% — they are the
        same measurement, so in fact they agree exactly."""
        machine = tiny(4, 4)
        prof = PhaseProfiler()
        result = run_allocator(spilly_module(machine),
                               SecondChanceBinpacking(), machine,
                               profiler=prof)
        alloc = result.stats.alloc_seconds
        assert alloc > 0
        assert prof.seconds("allocate") == pytest.approx(alloc, rel=0.01)
        assert result.stats.profiler is prof
        # The pipeline phases were timed on the same profiler.
        for name in ("pipeline.dce", "pipeline.peephole", "pipeline.verify",
                     "setup", "allocate.scan", "allocate.resolve"):
            assert name in prof.phases, name


# ----------------------------------------------------------------------
# Metrics registry.
# ----------------------------------------------------------------------
class TestMetrics:
    def test_bump_set_get(self):
        m = MetricsRegistry()
        m.bump("a.b")
        m.bump("a.b", 4)
        m.set("gauge", 2.5)
        assert m.get("a.b") == 5
        assert m.get("gauge") == 2.5
        assert m.get("missing") == 0
        assert "a.b" in m and "missing" not in m
        assert len(m) == 2

    def test_snapshot_diff(self):
        m = MetricsRegistry()
        m.bump("x", 2)
        before = m.snapshot()
        m.bump("x", 3)
        m.bump("y")
        m.bump("z", 0)  # created but unchanged: not in the diff
        assert m.diff(before) == {"x": 3, "y": 1}
        assert before == {"x": 2}  # snapshot is an independent copy

    def test_merge_sums(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.bump("k", 1)
        b.bump("k", 2)
        b.bump("only-b", 7)
        a.merge(b)
        assert a.get("k") == 3 and a.get("only-b") == 7

    def test_render_filters_by_prefix(self):
        m = MetricsRegistry()
        m.bump("alloc.spills", 3)
        m.bump("sim.cycles", 9)
        text = m.render(prefix="alloc.")
        assert "alloc.spills" in text and "sim.cycles" not in text

    def test_pipeline_publishes_layered_counters(self):
        machine = tiny(4, 4)
        metrics = MetricsRegistry()
        result = run_allocator(spilly_module(machine),
                               SecondChanceBinpacking(), machine,
                               metrics=metrics)
        assert result.stats.metrics is metrics
        for key in ("alloc.candidates", "alloc.functions",
                    "alloc.spill.evict.store", "binpack.scan.placements",
                    "pipeline.dce.removed",
                    "pipeline.peephole.moves_removed"):
            assert key in metrics, key
        # Metric mirrors the stats field it was published from.
        assert (metrics.get("alloc.candidates")
                == result.stats.total_candidates())
        simulate(result.module, machine, metrics=metrics)
        assert metrics.get("sim.dynamic.instructions") > 0
        assert metrics.get("sim.spill.evict.store") > 0
