"""Golden outputs for the benchmark analogs.

Pinning the analogs' observable output serves two purposes: it documents
what each program computes, and it guarantees the Table 1/2/Figure 3
workloads cannot silently drift (a changed analog would invalidate
paper-vs-measured comparisons recorded in EXPERIMENTS.md).
"""

import pytest

from repro.sim import simulate
from repro.target import alpha
from repro.workloads.programs import build_program

#: name -> (expected first outputs, expected dynamic instruction count).
GOLDEN = {
    "doduc": ([], 46_399),
    "eqntott": ([4320], 413_390),
    "compress": ([198, 795, 450], 88_005),
    "m88ksim": ([912, 112], 70_739),
    "sort": ([0, 1, 2044, 4080], 99_738),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_dynamic_counts(name):
    expected_prefix, expected_count = GOLDEN[name]
    outcome = simulate(build_program(name, alpha()), alpha())
    assert outcome.dynamic_instructions == expected_count, (
        f"{name}: the analog changed — update EXPERIMENTS.md if intended")
    if expected_prefix:
        assert outcome.output[:len(expected_prefix)] == expected_prefix


def test_sort_actually_sorts():
    outcome = simulate(build_program("sort", alpha()), alpha())
    inversions = outcome.output[0]
    assert inversions == 0


def test_wc_counts_are_consistent():
    outcome = simulate(build_program("wc", alpha()), alpha())
    lines, words, chars, vowels, consonants, max_len = outcome.output
    assert chars == 2048 * 6
    assert vowels + consonants <= chars
    assert 0 < max_len < 64
    assert words > lines > 0


def test_fpppp_output_is_finite():
    outcome = simulate(build_program("fpppp", alpha()), alpha())
    value = outcome.output[0]
    assert isinstance(value, float)
    assert value == value and abs(value) != float("inf")


def test_li_total_is_positive():
    outcome = simulate(build_program("li", alpha()), alpha())
    assert outcome.output[0] > 0
