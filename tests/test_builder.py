"""FunctionBuilder coverage: every emitter produces well-formed IR."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Op
from repro.ir.temp import PhysReg, StackSlot, Temp
from repro.ir.types import RegClass
from repro.ir.validate import validate_function

G = RegClass.GPR
F = RegClass.FPR


@pytest.fixture
def builder():
    fn = Function("f")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    return b


INT_BINOPS = ["add", "sub", "mul", "div", "rem", "and_", "or_", "xor",
              "shl", "shr", "slt", "sle", "seq", "sne"]
FLOAT_BINOPS = ["fadd", "fsub", "fmul", "fdiv"]
FLOAT_CMPS = ["fslt", "fsle", "fseq", "fsne"]


class TestEmitters:
    def test_all_int_binops(self, builder):
        a, b = builder.li(1), builder.li(2)
        results = [getattr(builder, name)(a, b) for name in INT_BINOPS]
        assert all(r.regclass is G for r in results)
        builder.ret()
        validate_function(builder.fn)

    def test_all_float_ops(self, builder):
        x, y = builder.fli(1.0), builder.fli(2.0)
        for name in FLOAT_BINOPS:
            assert getattr(builder, name)(x, y).regclass is F
        for name in FLOAT_CMPS:
            assert getattr(builder, name)(x, y).regclass is G
        assert builder.fneg(x).regclass is F
        builder.ret()
        validate_function(builder.fn)

    def test_conversions_and_unops(self, builder):
        i = builder.li(3)
        f = builder.itof(i)
        assert f.regclass is F
        assert builder.ftoi(f).regclass is G
        assert builder.neg(i).regclass is G
        assert builder.not_(i).regclass is G
        builder.ret()
        validate_function(builder.fn)

    def test_memory_ops(self, builder):
        base = builder.li(16)
        v = builder.ld(base, 4)
        builder.st(v, base, 8)
        fv = builder.fld(base, 0)
        builder.fst(fv, base, 1)
        slot = StackSlot(0, G)
        builder.sts(v, slot)
        builder.lds(slot, builder.temp(G))
        builder.ret()
        validate_function(builder.fn)

    def test_explicit_destination_reuse(self, builder):
        dst = builder.temp(G, "x")
        builder.li(1, dst=dst)
        builder.add(dst, dst, dst=dst)
        builder.ret(dst)
        validate_function(builder.fn)
        defs = [i.defs[0] for i in builder.fn.entry.instrs if i.defs]
        assert defs == [dst, dst]

    def test_control_flow(self, builder):
        cond = builder.li(1)
        builder.br(cond, "a", "b")
        builder.new_block("a")
        builder.jmp("c")
        builder.new_block("b")
        builder.jmp("c")
        builder.new_block("c")
        builder.ret()
        validate_function(builder.fn)

    def test_emit_without_block_rejected(self):
        b = FunctionBuilder(Function("f"))
        with pytest.raises(ValueError, match="no current block"):
            b.nop()

    def test_call_shapes(self, builder):
        arg = PhysReg(G, 1)
        ret = PhysReg(G, 0)
        builder.call("g", arg_regs=[arg], ret_reg=ret)
        builder.call("h")  # void, no args
        builder.ret()
        calls = [i for i in builder.fn.entry.instrs if i.op is Op.CALL]
        assert calls[0].uses == [arg] and calls[0].defs == [ret]
        assert calls[1].uses == [] and calls[1].defs == []

    def test_switch_to_reopens_block(self, builder):
        entry = builder.current
        builder.jmp("next")
        other = builder.new_block("next")
        builder.switch_to(other)
        builder.ret()
        assert builder.fn.blocks == [entry, other]
