"""Lifetime intervals and holes — including the paper's Figure 1 shape."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.lifetimes.intervals import Range, RangeSet, compute_lifetimes
from repro.target import tiny

G = RegClass.GPR
F = RegClass.FPR


class TestRangeSet:
    def test_normalization_merges_overlaps_and_adjacency(self):
        rs = RangeSet([(5, 7), (1, 3), (3, 5), (10, 12)])
        assert [(r.start, r.end) for r in rs] == [(1, 7), (10, 12)]

    def test_empty_ranges_dropped(self):
        assert not RangeSet([(3, 3)])

    def test_covers_and_boundaries(self):
        rs = RangeSet([(2, 5), (8, 9)])
        assert not rs.covers(1)
        assert rs.covers(2)
        assert rs.covers(4)
        assert not rs.covers(5)
        assert rs.covers(8)
        assert not rs.covers(9)

    def test_next_covered(self):
        rs = RangeSet([(2, 5), (8, 9)])
        assert rs.next_covered_at_or_after(0) == 2
        assert rs.next_covered_at_or_after(3) == 3
        assert rs.next_covered_at_or_after(5) == 8
        assert rs.next_covered_at_or_after(9) is None

    def test_overlaps_interval(self):
        rs = RangeSet([(2, 5)])
        assert rs.overlaps_interval(0, 3)
        assert rs.overlaps_interval(4, 9)
        assert not rs.overlaps_interval(5, 9)
        assert not rs.overlaps_interval(0, 2)
        assert not rs.overlaps_interval(3, 3)

    def test_overlaps_rangeset(self):
        a = RangeSet([(0, 2), (6, 8)])
        b = RangeSet([(2, 6)])
        c = RangeSet([(7, 10)])
        assert not a.overlaps(b)
        assert a.overlaps(c)
        assert not RangeSet().overlaps(a)

    def test_holes_between_ranges(self):
        rs = RangeSet([(1, 3), (5, 6), (9, 12)])
        assert [(h.start, h.end) for h in rs.holes()] == [(3, 5), (6, 9)]

    def test_clip(self):
        rs = RangeSet([(1, 4), (6, 9)])
        assert [(r.start, r.end) for r in rs.clip(2)] == [(2, 4), (6, 9)]
        assert [(r.start, r.end) for r in rs.clip(4)] == [(6, 9)]
        assert not rs.clip(9)

    def test_range_rejects_empty(self):
        with pytest.raises(ValueError):
            Range(3, 3)

    def test_next_covered_memo_parity(self):
        """The one-entry memo must be invisible: every answer equals the
        unmemoized query, under arbitrary (repeating, non-monotone)
        query sequences over many set shapes."""
        import random

        rng = random.Random(10)
        for _ in range(200):
            raw = [(s, s + rng.randrange(1, 6))
                   for s in (rng.randrange(0, 60)
                             for _ in range(rng.randrange(0, 8)))]
            memoized = RangeSet(raw)
            direct = RangeSet(raw)
            points = [rng.randrange(-2, 70) for _ in range(30)]
            # Force repeats: the memo's hit path must also be exercised.
            points += points[:10]
            for p in points:
                assert (memoized.next_covered_memo(p)
                        == direct.next_covered_at_or_after(p))
                assert (memoized.next_covered_memo(p) == p) == direct.covers(p)
                end = p + rng.randrange(0, 5)
                assert (memoized.overlaps_interval_memo(p, end)
                        == direct.overlaps_interval(p, end))

    def test_memo_does_not_affect_equality_or_hash(self):
        a = RangeSet([(2, 5), (8, 9)])
        b = RangeSet([(2, 5), (8, 9)])
        a.next_covered_memo(3)
        assert a == b and hash(a) == hash(b)


def figure1_function() -> Function:
    """The paper's Figure 1 CFG: a diamond with four temporaries.

    B1 writes T2, reads T1, writes T4 (approximating the figure); B2
    reads/writes as in the left arm; B3 as the right; B4 joins.
    """
    fn = Function("fig1")
    b = FunctionBuilder(fn)
    b.new_block("B1")
    t1 = b.temp(G, "T1")
    t2 = b.temp(G, "T2")
    t4 = b.temp(G, "T4")
    b.li(1, dst=t1)
    b.li(2, dst=t2)          # T2 <- ..
    b.print_(t1)             # .. <- T1
    b.li(4, dst=t4)          # T4 <- ..
    b.br(t2, "B2", "B3")
    b.new_block("B2")
    t3 = b.temp(G, "T3")
    b.mov(t2, dst=t3)        # T3 <- T2
    b.print_(t3)             # .. <- T3
    b.li(1, dst=t1)          # T1 <- ..
    b.li(5, dst=t4)          # T4 <- ..
    b.jmp("B4")
    b.new_block("B3")
    b.print_(t1)             # .. <- T1
    b.print_(t4)             # .. <- T4
    b.li(6, dst=t4)          # T4 <- ..
    b.jmp("B4")
    b.new_block("B4")
    b.print_(t1)
    b.print_(t4)             # .. <- T4
    b.ret(t4)
    return fn


class TestFigure1:
    def test_t4_has_a_hole_over_b2(self):
        """Figure 1's point: a block boundary can open a hole — T4's value
        from B1 is dead through B2 (which rewrites it)."""
        fn = figure1_function()
        table = compute_lifetimes(fn, tiny())
        t4 = next(t for t in table.temps if t.name == "T4")
        holes = table.temps[t4].holes()
        assert holes, "T4 should have a lifetime hole"
        b2_span = table.block_span["B2"]
        assert any(h.start <= b2_span[0] and h.end >= b2_span[0]
                   for h in holes), "the hole should cover B2's entry"

    def test_t3_fits_in_linear_order(self):
        fn = figure1_function()
        table = compute_lifetimes(fn, tiny())
        t3 = next(t for t in table.temps if t.name == "T3")
        t3_life = table.temps[t3]
        # T3 lives only inside B2.
        b2 = table.block_span["B2"]
        assert b2[0] <= t3_life.start and t3_life.end <= b2[1]

    def test_lifetime_alive_and_hole_queries_agree(self):
        fn = figure1_function()
        table = compute_lifetimes(fn, tiny())
        for lifetime in table.temps.values():
            for point in range(lifetime.start, lifetime.end):
                assert lifetime.alive_at(point) != lifetime.in_hole(point)


class TestNumbering:
    def test_points_are_two_per_instruction(self):
        fn = figure1_function()
        table = compute_lifetimes(fn, tiny())
        assert table.max_point == 2 * fn.instruction_count()
        first = fn.entry.instrs[0]
        assert table.use_point(first) == 0
        assert table.def_point(first) == 1

    def test_block_spans_partition_the_function(self):
        fn = figure1_function()
        table = compute_lifetimes(fn, tiny())
        spans = [table.block_span[b.label] for b in fn.blocks]
        assert spans[0][0] == 0
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 == s2
        assert spans[-1][1] == table.max_point


class TestDefUseShapes:
    def test_dead_def_occupies_one_point(self):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        dead = b.li(42)  # never used
        b.ret()
        table = compute_lifetimes(fn, tiny())
        life = table.temps[dead]
        assert [(r.start, r.end) for r in life.live] == [(1, 2)]

    def test_same_temp_use_and_def(self):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        x = b.li(1)
        b.add(x, x, dst=x)  # use at 2, def at 3 -> continuous
        b.print_(x)
        b.ret()
        table = compute_lifetimes(fn, tiny())
        assert len(table.temps[x].live) == 1

    def test_next_ref_and_depth(self):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        x = b.li(3)
        b.jmp("head")
        b.new_block("head")
        c = b.slt(b.li(0), x)
        b.br(c, "body", "out")
        b.new_block("body")
        b.mov(b.addi(x, -1), dst=x)
        b.jmp("head")
        b.new_block("out")
        b.ret(x)
        table = compute_lifetimes(fn, tiny())
        # x's first ref is its def (point 1); subsequent refs are in the loop.
        point, depth = table.next_ref_at_or_after(x, 0)
        assert point == 1 and depth == 0
        later = table.next_ref_at_or_after(x, 4)
        assert later is not None and later[1] == 1  # loop depth 1
        assert table.next_ref_at_or_after(x, 10 ** 9) is None


class TestReservations:
    def test_call_reserves_caller_saved_only(self):
        mach = tiny(6, 6)
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.call("g")
        b.ret()
        table = compute_lifetimes(fn, mach)
        call_instr = fn.entry.instrs[0]
        window = (table.use_point(call_instr), table.use_point(call_instr) + 2)
        for reg in mach.caller_saved(G):
            assert table.reserved_for(reg).overlaps_interval(*window)
        for reg in mach.callee_saved(G):
            assert not table.reserved_for(reg).overlaps_interval(*window)

    def test_arg_register_reserved_from_setup_to_call(self):
        mach = tiny(6, 6)
        arg = mach.param_regs(G)[0]
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        x = b.li(7)
        b.emit(Instr(Op.MOV, defs=[arg], uses=[x]))  # instr 1
        b.call("g", arg_regs=[arg])                  # instr 2
        b.ret()
        table = compute_lifetimes(fn, mach)
        reserved = table.reserved_for(arg)
        # Reserved from its def (point 3) through the call window.
        assert reserved.covers(3)
        assert reserved.covers(4)
        assert reserved.covers(5)
