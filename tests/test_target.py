"""Machine-description invariants for the alpha and tiny targets."""

import pytest

from repro.ir.instr import Op
from repro.ir.temp import PhysReg
from repro.ir.types import RegClass
from repro.target import alpha, tiny
from repro.target.machine import CYCLE_COSTS, MachineDescription, cycle_cost

G = RegClass.GPR
F = RegClass.FPR


@pytest.fixture(params=["alpha", "tiny4", "tiny6", "tiny8"])
def machine(request):
    return {"alpha": alpha(), "tiny4": tiny(4, 4), "tiny6": tiny(6, 6),
            "tiny8": tiny(8, 8)}[request.param]


class TestInvariants:
    def test_files_partition_into_saved_sets(self, machine):
        for cls in (G, F):
            caller = set(machine.caller_saved(cls))
            callee = set(machine.callee_saved(cls))
            assert caller | callee == set(machine.regs(cls))
            assert not caller & callee

    def test_param_and_return_regs_are_caller_saved(self, machine):
        for cls in (G, F):
            for reg in machine.param_regs(cls):
                assert machine.is_caller_saved(reg)
            assert machine.is_caller_saved(machine.ret_reg(cls))

    def test_param_regs_are_distinct(self, machine):
        for cls in (G, F):
            params = machine.param_regs(cls)
            assert len(set(params)) == len(params)

    def test_at_least_one_callee_saved(self, machine):
        assert machine.callee_saved(G)
        assert machine.callee_saved(F)

    def test_file_sizes(self, machine):
        assert len(machine.gprs) == machine.n_gpr == machine.file_size(G)
        assert len(machine.fprs) == machine.n_fpr == machine.file_size(F)


class TestAlpha:
    def test_dimensions_match_the_paper(self):
        m = alpha()
        assert m.n_gpr == 32 and m.n_fpr == 32
        assert len(m.param_regs(G)) == 6
        assert m.ret_reg(G) == PhysReg(G, 0)
        assert len(m.callee_saved(G)) == 10


class TestTiny:
    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            tiny(3, 4)
        with pytest.raises(ValueError):
            tiny(4, 3)

    def test_construction_validates_indices(self):
        with pytest.raises(ValueError):
            MachineDescription("bad", 4, 4, (9,), (), (1,), (1,), 0, 0)

    def test_callee_saved_param_reg_rejected(self):
        with pytest.raises(ValueError, match="caller-saved"):
            MachineDescription("bad", 4, 4, (1,), (3,), (1,), (1,), 0, 0)


class TestCycleModel:
    def test_memory_ops_cost_more_than_alu(self):
        assert cycle_cost(Op.LDS) > cycle_cost(Op.ADD)
        assert cycle_cost(Op.LD) == cycle_cost(Op.ST)

    def test_divide_is_slowest(self):
        assert cycle_cost(Op.DIV) == max(CYCLE_COSTS.values())

    def test_default_is_one(self):
        assert cycle_cost(Op.NOP) == 1
        assert cycle_cost(Op.XOR) == 1
