"""The pass-manager layer: analysis caching, invalidation, sessions.

Covers the contracts docs/ARCHITECTURE.md states:

* analyze-once — comparing all four allocators in one session computes
  each shared setup analysis at most once per function (the transfer
  path serves every run's clone);
* faithfulness — a session run produces byte-identical output to a
  standalone ``run_allocator`` call;
* explicit invalidation — after a mutation plus ``invalidate``, stale
  cached results are never served, and the clone link is severed so
  stale results cannot arrive by transfer either;
* preserved-analyses declarations — what a pass claims to preserve
  through the ``PassManager`` really is still valid afterwards.
"""

import pytest

from repro.allocators import ALLOCATOR_FACTORIES, make_allocator
from repro.cfg.cfg import CFG
from repro.dataflow.liveness import compute_liveness
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.ir.types import RegClass
from repro.lang import compile_minic
from repro.pipeline import run_allocator
from repro.pm import CompilationSession, DCE_PASS, PEEPHOLE_PASS
from repro.pm.analysis import (CFG_ANALYSIS, LIFETIMES_ANALYSIS,
                               LIVENESS_ANALYSIS)
from repro.target import tiny

SOURCE = """
func int helper(int x) {
  int unused = x * 7;
  return x + 2;
}

func int main() {
  int total = 0;
  for (int i = 0; i < 6; i = i + 1) {
    total = total + helper(i);
  }
  print total;
  return 0;
}
"""


def machine():
    return tiny(6, 6)


def session_over(source=SOURCE):
    m = machine()
    return CompilationSession(compile_minic(source, m), m), m


# ----------------------------------------------------------------------
# The acceptance criterion: analyze once, run many.
# ----------------------------------------------------------------------
class TestAnalyzeOnce:
    def test_four_allocators_share_one_analysis_computation(self):
        session, _ = session_over()
        for name in ALLOCATOR_FACTORIES:
            session.run(make_allocator(name))
        n_fns = len(session.module.functions)
        metrics = session.metrics
        # The DCE'd base plus four run clones — yet each shared analysis
        # was computed exactly once per function, on the base.
        for kind in ("cfg", "loops", "linear", "lifetimes"):
            assert metrics.get(f"pm.analysis.computed.{kind}") == n_fns, kind
        # Liveness additionally runs once per DCE round; the allocators
        # themselves never trigger a recomputation.
        dce_rounds = metrics.get("pm.analysis.computed.liveness")
        assert n_fns <= dce_rounds <= 3 * n_fns
        # Every run's clone was served by transfer, not recomputation.
        assert metrics.get("pm.analysis.transfers") >= 4 * 4 * n_fns
        assert metrics.get("pm.analysis.hits") > 0
        assert metrics.get("pm.analysis.invalidated") > 0

    def test_session_profiler_still_reports_setup_phase(self):
        from repro.obs import PhaseProfiler

        session, _ = session_over()
        session.run(make_allocator("second-chance"))  # warm the cache
        prof = PhaseProfiler()
        session.run(make_allocator("coloring"), profiler=prof)
        # The warm run still times its (cheap, transfer-only) setup.
        assert "setup" in prof.phases
        assert "allocate" in prof.phases


# ----------------------------------------------------------------------
# Faithfulness: session runs == standalone runs, byte for byte.
# ----------------------------------------------------------------------
class TestSessionFaithful:
    @pytest.mark.parametrize("name", list(ALLOCATOR_FACTORIES))
    def test_session_run_matches_standalone(self, name):
        session, m = session_over()
        shared = session.run(make_allocator(name), verify_dataflow=True,
                             spill_cleanup=True)
        standalone = run_allocator(compile_minic(SOURCE, m),
                                   make_allocator(name), m,
                                   verify_dataflow=True, spill_cleanup=True)
        assert print_module(shared.module) == print_module(standalone.module)
        assert shared.dce_removed == standalone.dce_removed
        assert shared.moves_removed == standalone.moves_removed

    def test_runs_do_not_contaminate_each_other(self):
        session, _ = session_over()
        first = session.run(make_allocator("second-chance"))
        second = session.run(make_allocator("second-chance"))
        assert print_module(first.module) == print_module(second.module)
        assert first.module is not second.module

    def test_session_rejects_foreign_module(self):
        session, m = session_over()
        other = compile_minic(SOURCE, m)
        with pytest.raises(ValueError, match="session's own module"):
            run_allocator(other, make_allocator("second-chance"), m,
                          session=session)

    def test_pristine_module_never_mutated(self):
        session, _ = session_over()
        before = print_module(session.module)
        session.run(make_allocator("coloring"), spill_cleanup=True)
        assert print_module(session.module) == before


# ----------------------------------------------------------------------
# Invalidation: stale results are never served.
# ----------------------------------------------------------------------
def two_block_function():
    """``entry: t0 = 1; t1 = t0 + t0; jmp exit`` / ``exit: ret`` — small
    enough that expected liveness is obvious."""
    fn = Function("f")
    t0 = fn.new_temp(RegClass.GPR)
    t1 = fn.new_temp(RegClass.GPR)
    fn.add_block(BasicBlock("entry", [
        Instr(Op.LI, defs=[t0], imm=1),
        Instr(Op.ADD, defs=[t1], uses=[t0, t0]),
        Instr(Op.JMP, targets=["exit"]),
    ]))
    fn.add_block(BasicBlock("exit", [Instr(Op.RET)]))
    return fn, t0, t1


class TestInvalidation:
    def test_mutation_plus_invalidate_recomputes(self):
        session, _ = session_over()
        am = session.analyses
        fn, t0, t1 = two_block_function()
        live = am.liveness(fn)
        assert am.liveness(fn) is live  # cache hit: same object
        assert not live.live_out_temps("entry")
        # Mutate: t1 is now read in exit, so it must be live across the
        # edge — the cached result is stale.
        fn.block("exit").instrs.insert(
            0, Instr(Op.ADD, defs=[fn.new_temp(RegClass.GPR)],
                     uses=[t1, t1]))
        am.invalidate(fn)
        fresh = am.liveness(fn)
        assert fresh is not live
        assert set(fresh.live_out_temps("entry")) == {t1}
        expected = compute_liveness(fn, CFG.build(fn))
        assert fresh.live_out_temps("entry") == expected.live_out_temps(
            "entry")

    def test_invalidate_severs_clone_link(self):
        session, _ = session_over()
        am = session.analyses
        base, _, _ = two_block_function()
        am.cfg(base)
        instr_map: dict = {}
        clone = base.clone(instr_map)
        am.link_clone(base, clone, instr_map)
        transfers_before = session.metrics.get("pm.analysis.transfers")
        assert am.cfg(clone).fn is clone  # served by transfer
        assert session.metrics.get("pm.analysis.transfers") \
            == transfers_before + 1
        # The clone mutates (as allocators do): a fresh block appears.
        clone.block("entry").instrs[-1].targets[0] = "mid"
        clone.blocks.insert(1, BasicBlock("mid", [
            Instr(Op.JMP, targets=["exit"])]))
        am.invalidate(clone)
        recomputed = am.cfg(clone)
        # Not a stale transfer of the base's two-block CFG:
        assert set(recomputed.succs) == {"entry", "mid", "exit"}
        assert session.metrics.get("pm.analysis.transfers") \
            == transfers_before + 1

    def test_invalidate_preserve_keeps_named_analyses(self):
        session, _ = session_over()
        am = session.analyses
        fn, _, _ = two_block_function()
        cfg = am.cfg(fn)
        live = am.liveness(fn)
        am.invalidate(fn, preserve=frozenset({"cfg"}))
        assert am.cfg(fn) is cfg
        assert am.liveness(fn) is not live

    def test_invalidate_rejects_unknown_analysis_names(self):
        session, _ = session_over()
        with pytest.raises(ValueError, match="unknown analyses"):
            session.analyses.invalidate(
                session.module.function("main"),
                preserve=frozenset({"not-an-analysis"}))

    def test_allocator_run_invalidates_its_clone(self):
        """After allocation mutates a run's clone, nothing stale remains
        cached for it: a fresh CFG query reflects the allocated code."""
        session, _ = session_over()
        result = session.run(make_allocator("second-chance"))
        for fn in result.module.functions.values():
            cached = session.analyses.cached(CFG_ANALYSIS, fn)
            if cached is not None:  # recomputed post-allocation by a pass
                assert set(cached.succs) == {b.label for b in fn.blocks}
            stale = session.analyses.cached(LIFETIMES_ANALYSIS, fn)
            assert stale is None


# ----------------------------------------------------------------------
# PassManager: preserved-analyses declarations hold.
# ----------------------------------------------------------------------
class TestPassManagerPreserves:
    def test_dce_preserves_cfg_identity_and_valid_liveness(self):
        session, _ = session_over()
        base, removed = session.prepared(dce=True)
        assert removed > 0  # SOURCE contains dead code
        for fn in base.functions.values():
            cached_cfg = session.analyses.cached(CFG_ANALYSIS, fn)
            cached_live = session.analyses.cached(LIVENESS_ANALYSIS, fn)
            assert cached_cfg is not None and cached_live is not None
            # The preserved CFG must equal a fresh build on the DCE'd
            # code...
            fresh_cfg = CFG.build(fn)
            assert cached_cfg.succs == fresh_cfg.succs
            assert cached_cfg.preds == fresh_cfg.preds
            # ...and the preserved liveness a fresh fixed point.
            fresh_live = compute_liveness(fn, fresh_cfg)
            for block in fn.blocks:
                assert (set(cached_live.live_in_temps(block.label))
                        == set(fresh_live.live_in_temps(block.label)))
                assert (set(cached_live.live_out_temps(block.label))
                        == set(fresh_live.live_out_temps(block.label)))

    def test_nonpreserved_analyses_dropped_only_on_change(self):
        session, _ = session_over()
        am = session.analyses
        pm = session.passes
        fn, t0, t1 = two_block_function()
        module = Module(functions={"f": fn})
        live = am.liveness(fn)
        # Peephole finds nothing to remove here: everything stays cached.
        pm.run(PEEPHOLE_PASS, module)
        assert am.cached(LIVENESS_ANALYSIS, fn) is live
        # DCE removes the dead t1 add; liveness survives via the pass's
        # preserve set, but instruction-keyed analyses would have been
        # dropped (none cached here) and the round invalidation replaced
        # the pre-pass liveness object.
        removed = sum(pm.run(DCE_PASS, module))
        assert removed > 0
        assert am.cached(LIVENESS_ANALYSIS, fn) is not live
