"""Differential tests: sparse sweep build vs the mask-based oracle.

``GraphColoring(build="check")`` runs both interference builds every
round and asserts identical edge sets, adjacency insertion order,
degrees, spill costs, and move discovery order — so simply running the
pipeline in check mode over a workload IS the differential assertion.
These tests sweep that mode across every workload analog, a fixed fuzz
corpus, and generated fpppp-shaped straight-line blocks.
"""

import random

import pytest

from repro.allocators.coloring import GraphColoring
from repro.allocators.coloring.george_appel import BUILD_MODES
from repro.fuzz.generate import program_for_seed
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.pipeline import run_allocator
from repro.target import alpha, tiny
from repro.workloads.programs import PROGRAM_NAMES, build_program

MACHINES = [("alpha", alpha), ("tiny8", lambda: tiny(8, 8))]


def _check(module, machine) -> None:
    """Allocate with both builds running + comparing every round."""
    run_allocator(module, GraphColoring(build="check"), machine)


class TestBuildModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            GraphColoring(build="pairwise")

    def test_all_modes_produce_identical_modules(self):
        machine = alpha()
        module = build_program("compress", machine)
        texts = {}
        for mode in BUILD_MODES:
            result = run_allocator(module, GraphColoring(build=mode), machine)
            texts[mode] = print_module(result.module)
        assert texts["sweep"] == texts["mask"] == texts["check"]

    def test_fresh_preserves_build_mode(self):
        allocator = GraphColoring(build="check")
        assert allocator.fresh().build == "check"


class TestAnalogDifferential:
    @pytest.mark.parametrize("machine_name,factory", MACHINES,
                             ids=[name for name, _ in MACHINES])
    @pytest.mark.parametrize("analog", PROGRAM_NAMES)
    def test_sweep_matches_oracle(self, machine_name, factory, analog):
        machine = factory()
        try:
            module = build_program(analog, machine)
        except Exception:
            pytest.skip(f"{analog} does not build on {machine_name}")
        _check(module, machine)


class TestFuzzDifferential:
    @pytest.mark.parametrize("seed", range(100))
    def test_sweep_matches_oracle(self, seed):
        program = program_for_seed(seed)
        _check(program.module, program.machine)


def straightline_module(seed: int, n_temps: int = 300,
                        n_instrs: int = 900) -> Module:
    """An fpppp-shaped function: one huge straight-line block.

    Hundreds of temporaries with long, heavily overlapping live ranges
    and no interior control flow — the shape that made the
    per-instruction build quadratic in practice.  Every temporary is
    defined before use, so the module passes the post-allocation
    verifier.
    """
    rng = random.Random(seed)
    fn = Function(f"straightline{seed}")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    live = [b.li(i) for i in range(8)]
    for i in range(n_instrs):
        x = rng.choice(live)
        y = rng.choice(live)
        roll = rng.random()
        if roll < 0.10:
            # A register-register move: coalescing candidates.
            value = b.mov(x)
        elif roll < 0.18 and len(live) > 16:
            # Overwrite an existing temporary (a second def).
            value = b.add(x, y, dst=rng.choice(live))
        else:
            value = b.add(x, y)
        if value not in live:
            live.append(value)
        if len(live) > n_temps:
            del live[: len(live) - n_temps]
    total = live[0]
    for t in live[1 : 1 + rng.randrange(4, 40)]:
        total = b.add(total, t)
    b.print_(total)
    b.ret(total)
    module = Module()
    module.add_function(fn)
    return module


class TestStraightLineProperty:
    @pytest.mark.parametrize("seed", range(6))
    def test_fpppp_shaped_blocks(self, seed):
        machine = alpha()
        _check(straightline_module(seed), machine)

    def test_high_pressure_forces_spill_rounds(self, seed=99):
        # On a tiny machine the same shape must spill and iterate; the
        # differential check then covers multi-round rebuilds.
        machine = tiny(6, 6)
        _check(straightline_module(seed, n_temps=64, n_instrs=400), machine)
