"""Property-based tests: random programs through every allocator must
preserve observable behaviour, and core data structures obey their
invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocators import (
    GraphColoring,
    PolettoLinearScan,
    SecondChanceBinpacking,
    TwoPassBinpacking,
)
from repro.allocators.binpack.allocator import BinpackOptions
from repro.cfg.cfg import CFG
from repro.dataflow.liveness import compute_liveness
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.validate import validate_module
from repro.lifetimes.intervals import RangeSet, compute_lifetimes
from repro.pipeline import run_allocator
from repro.sim.machine import outputs_equal, simulate
from repro.target import alpha, tiny
from repro.workloads.synthetic import random_module

MACHINES = [tiny(4, 4), tiny(6, 6), tiny(8, 8)]

END_TO_END = settings(max_examples=12, deadline=None,
                      suppress_health_check=[HealthCheck.too_slow])


def _oracle(module, machine, allocator):
    reference = simulate(module, machine, max_steps=2_000_000)
    result = run_allocator(module, allocator, machine)
    outcome = simulate(result.module, machine, max_steps=4_000_000)
    assert outputs_equal(outcome.output, reference.output), (
        f"{allocator.name}: {reference.output[:8]} vs {outcome.output[:8]}")


class TestEndToEnd:
    @given(seed=st.integers(0, 10_000), machine_idx=st.integers(0, 2))
    @END_TO_END
    def test_second_chance_preserves_behaviour(self, seed, machine_idx):
        machine = MACHINES[machine_idx]
        module = random_module(seed, machine, size=18)
        _oracle(module, machine, SecondChanceBinpacking())

    @given(seed=st.integers(0, 10_000), machine_idx=st.integers(0, 2))
    @END_TO_END
    def test_coloring_preserves_behaviour(self, seed, machine_idx):
        machine = MACHINES[machine_idx]
        module = random_module(seed, machine, size=18)
        _oracle(module, machine, GraphColoring())

    @given(seed=st.integers(0, 10_000), machine_idx=st.integers(0, 2))
    @END_TO_END
    def test_two_pass_preserves_behaviour(self, seed, machine_idx):
        machine = MACHINES[machine_idx]
        module = random_module(seed, machine, size=18)
        _oracle(module, machine, TwoPassBinpacking())

    @given(seed=st.integers(0, 10_000), machine_idx=st.integers(0, 2))
    @END_TO_END
    def test_poletto_preserves_behaviour(self, seed, machine_idx):
        machine = MACHINES[machine_idx]
        module = random_module(seed, machine, size=18)
        _oracle(module, machine, PolettoLinearScan())

    @given(seed=st.integers(0, 10_000),
           holes=st.booleans(), esc=st.booleans(), moves=st.booleans(),
           cons=st.booleans(), conservative=st.booleans())
    @settings(max_examples=16, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_binpack_option_combination(self, seed, holes, esc, moves,
                                              cons, conservative):
        machine = tiny(5, 5)
        module = random_module(seed, machine, size=15)
        options = BinpackOptions(
            use_holes=holes, early_second_chance=esc, move_elimination=moves,
            avoid_consistent_stores=cons,
            conservative_consistency=conservative)
        _oracle(module, machine, SecondChanceBinpacking(options))


class TestStructuralProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_generated_modules_validate_and_round_trip(self, seed):
        machine = tiny(6, 6)
        module = random_module(seed, machine, size=20)
        validate_module(module)
        text = print_module(module)
        assert print_module(parse_module(text)) == text

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_lifetime_invariants(self, seed):
        machine = tiny(6, 6)
        module = random_module(seed, machine, size=20)
        for fn in module.functions.values():
            table = compute_lifetimes(fn, machine)
            for temp, lifetime in table.temps.items():
                ranges = list(lifetime.live)
                # Sorted, disjoint, non-empty, within the function.
                assert all(r.start < r.end for r in ranges)
                assert all(a.end <= b.start for a, b in zip(ranges, ranges[1:]))
                assert lifetime.start >= 0
                assert lifetime.end <= table.max_point
                # Every reference point is covered by a live range
                # (uses read a live value; defs begin one).
                for point in table.ref_points[temp]:
                    if point % 2 == 0:  # use point
                        assert lifetime.alive_at(point), (temp, point)
                    else:
                        assert lifetime.alive_at(point), (temp, point)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_liveness_matches_lifetime_block_boundaries(self, seed):
        machine = tiny(6, 6)
        module = random_module(seed, machine, size=20)
        for fn in module.functions.values():
            cfg = CFG.build(fn)
            liveness = compute_liveness(fn, cfg)
            table = compute_lifetimes(fn, machine, cfg, liveness)
            reachable = cfg.reachable()
            for block in fn.blocks:
                if block.label not in reachable:
                    continue
                start, _end = table.block_span[block.label]
                for temp in liveness.live_in_temps(block.label):
                    assert table.temps[temp].alive_at(start), (
                        f"{temp} live-in {block.label} but not covered")


ranges_strategy = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 200)).map(
        lambda p: (min(p), max(p))),
    max_size=12)


class TestRangeSetProperties:
    @given(ranges_strategy)
    def test_normalization(self, raw):
        rs = RangeSet(raw)
        ranges = list(rs)
        assert all(r.start < r.end for r in ranges)
        assert all(a.end < b.start for a, b in zip(ranges, ranges[1:]))

    @given(ranges_strategy, st.integers(-5, 205))
    def test_covers_matches_naive(self, raw, point):
        rs = RangeSet(raw)
        naive = any(s <= point < e for s, e in raw if s < e)
        assert rs.covers(point) == naive

    @given(ranges_strategy, ranges_strategy)
    def test_overlaps_matches_naive(self, raw_a, raw_b):
        a, b = RangeSet(raw_a), RangeSet(raw_b)
        points_b = {p for s, e in raw_b if s < e for p in (s, e - 1)}
        naive = any(a.covers(p) for p in points_b) or any(
            b.covers(p) for s, e in raw_a if s < e for p in (s, e - 1))
        assert a.overlaps(b) == naive
        assert a.overlaps(b) == b.overlaps(a)

    @given(ranges_strategy, st.integers(0, 205))
    def test_clip_drops_only_earlier_points(self, raw, start):
        rs = RangeSet(raw)
        clipped = rs.clip(start)
        for point in range(max(0, start - 3), min(206, start + 50)):
            if point < start:
                assert not clipped.covers(point)
            else:
                assert clipped.covers(point) == rs.covers(point)

    @given(ranges_strategy, st.integers(-5, 205))
    def test_next_covered_is_first(self, raw, point):
        rs = RangeSet(raw)
        nxt = rs.next_covered_at_or_after(point)
        if nxt is None:
            assert all(not rs.covers(p) for p in range(point, 210))
        else:
            assert rs.covers(nxt)
            assert all(not rs.covers(p) for p in range(point, nxt))


def _model_rangeset(raw):
    """The original sort-merge construction, as the oracle for the flat
    parallel-array representation."""
    merged = []
    for start, end in sorted(raw):
        if start >= end:
            continue
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1][1] = end
        else:
            merged.append([start, end])
    return [tuple(pair) for pair in merged]


class TestFlatRangeSetMatchesModel:
    """The flat-array RangeSet against the old construction semantics."""

    @given(ranges_strategy)
    def test_generic_construction_matches_model(self, raw):
        rs = RangeSet(raw)
        assert [(r.start, r.end) for r in rs] == _model_rangeset(raw)

    @given(ranges_strategy)
    def test_reverse_sweep_matches_model_on_descending_input(self, raw):
        # compute_lifetimes appends each temp's ranges with non-increasing
        # starts; the no-sort path must agree with the sorting one.
        descending = sorted(raw, reverse=True)
        rs = RangeSet.from_reverse_sweep(descending)
        assert [(r.start, r.end) for r in rs] == _model_rangeset(raw)
        assert rs == RangeSet(raw)

    @given(ranges_strategy)
    def test_reverse_sweep_falls_back_on_unsorted_input(self, raw):
        # Arbitrary (possibly unsorted) input must still normalize
        # correctly via the fallback, never silently mis-merge.
        rs = RangeSet.from_reverse_sweep(raw)
        assert [(r.start, r.end) for r in rs] == _model_rangeset(raw)

    @given(ranges_strategy, st.integers(-5, 205))
    def test_flat_queries_match_range_objects(self, raw, point):
        rs = RangeSet(raw)
        ranges = list(rs)  # materialized Range boundary
        assert rs.covers(point) == any(point in r for r in ranges)
        assert len(rs) == len(ranges)
        assert bool(rs) == bool(ranges)
        if ranges:
            assert rs.start == ranges[0].start
            assert rs.end == ranges[-1].end
