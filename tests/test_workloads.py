"""Workload generators and the benchmark analogs.

The full analog suite is exercised per-allocator by the benchmark
harness; here we check structure, determinism, and run a fast subset
end-to-end through every allocator.
"""

import pytest

from repro.ir.printer import print_module
from repro.ir.validate import validate_module
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.target import alpha, tiny
from repro.workloads.programs import (
    PROGRAM_NAMES,
    PROGRAM_SOURCES,
    build_program,
    program_source,
)
from repro.workloads.synthetic import random_module, scaled_module

#: Analogs cheap enough to simulate inside the unit-test suite.
FAST_PROGRAMS = ["doduc", "fpppp", "compress", "m88ksim", "sort"]


class TestAnalogCatalogue:
    def test_all_eleven_paper_benchmarks_present(self):
        assert PROGRAM_NAMES == ["alvinn", "doduc", "eqntott", "espresso",
                                 "fpppp", "li", "tomcatv", "compress",
                                 "m88ksim", "sort", "wc"]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            program_source("quake")

    @pytest.mark.parametrize("name", PROGRAM_NAMES)
    def test_every_analog_compiles_and_validates(self, name):
        module = build_program(name)
        validate_module(module)
        assert "main" in module.functions

    @pytest.mark.parametrize("name", FAST_PROGRAMS)
    def test_fast_analogs_run_and_produce_output(self, name):
        outcome = simulate(build_program(name), alpha())
        assert outcome.output, f"{name} printed nothing"
        assert outcome.dynamic_instructions > 1000

    def test_fpppp_has_high_fp_pressure(self):
        """The fpppp analog must overcommit the 32 floating-point
        registers (it is the paper's heavy-spill benchmark)."""
        module = build_program("fpppp")
        machine = alpha()
        from repro.allocators import SecondChanceBinpacking
        result = run_allocator(module, SecondChanceBinpacking(), machine)
        assert sum(result.stats.spill_static.values()) > 0


class TestAnalogsThroughAllocators:
    @pytest.mark.parametrize("name", ["doduc", "sort"])
    def test_oracle_on_alpha(self, name, any_allocator):
        machine = alpha()
        module = build_program(name, machine)
        reference = simulate(module, machine)
        result = run_allocator(module, any_allocator, machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)


class TestRandomModule:
    def test_deterministic_per_seed(self):
        machine = tiny(6, 6)
        a = print_module(random_module(123, machine, size=15))
        b = print_module(random_module(123, machine, size=15))
        assert a == b

    def test_different_seeds_differ(self):
        machine = tiny(6, 6)
        a = print_module(random_module(1, machine))
        b = print_module(random_module(2, machine))
        assert a != b

    def test_validates_and_terminates(self):
        machine = tiny(6, 6)
        module = random_module(77, machine, size=30, n_helpers=2)
        validate_module(module)
        outcome = simulate(module, machine, max_steps=2_000_000)
        assert outcome.result is not None


class TestScaledModule:
    @pytest.mark.parametrize("n", [100, 245, 1000])
    def test_candidate_count_close_to_target(self, n):
        module = scaled_module(n)
        fn = module.functions["main"]
        candidates = len(fn.all_temps())
        assert abs(candidates - n) <= max(n // 5, 40)

    def test_runs_correctly(self):
        machine = alpha()
        module = scaled_module(200)
        outcome = simulate(module, machine)
        assert len(outcome.output) == 1

    def test_density_grows_with_size(self):
        from repro.allocators import GraphColoring
        small = run_allocator(scaled_module(150), GraphColoring(), alpha())
        large = run_allocator(scaled_module(1200), GraphColoring(), alpha())
        small_edges = small.stats.interference_edges["main"]
        large_edges = large.stats.interference_edges["main"]
        small_n = small.stats.candidates["main"]
        large_n = large.stats.candidates["main"]
        # Edges per candidate must grow, not just edges.
        assert large_edges / large_n > small_edges / small_n
