"""Unit tests for blocks, functions, and modules."""

import pytest

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, make
from repro.ir.module import HEAP_BASE, Module
from repro.ir.types import RegClass

G = RegClass.GPR


def ret():
    return Instr(Op.RET)


class TestBasicBlock:
    def test_terminator_required(self):
        block = BasicBlock("b")
        with pytest.raises(ValueError, match="no terminator"):
            block.terminator

    def test_append_past_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(ret())
        with pytest.raises(ValueError, match="already terminated"):
            block.append(make(Op.NOP))

    def test_successors_of_each_terminator(self):
        jmp = BasicBlock("a", [make(Op.JMP, targets=["x"])])
        br = BasicBlock("b", [Instr(Op.BR, uses=[], targets=["x", "y"])])
        done = BasicBlock("c", [ret()])
        assert jmp.successors() == ["x"]
        assert br.successors() == ["x", "y"]
        assert done.successors() == []

    def test_insert_before_terminator(self):
        block = BasicBlock("b", [make(Op.NOP), ret()])
        block.insert_before_terminator([make(Op.NOP), make(Op.NOP)])
        assert len(block) == 4
        assert block.instrs[-1].op is Op.RET

    def test_insert_at_top(self):
        block = BasicBlock("b", [ret()])
        marker = make(Op.NOP)
        block.insert_at_top([marker])
        assert block.instrs[0] is marker

    def test_body_excludes_terminator(self):
        block = BasicBlock("b", [make(Op.NOP), ret()])
        assert len(block.body) == 1


class TestFunction:
    def test_temps_are_unique_and_ordered(self):
        fn = Function("f")
        a = fn.new_temp(G)
        b = fn.new_temp(G)
        assert a.id != b.id
        assert fn.temp_count() == 2

    def test_duplicate_block_labels_rejected(self):
        fn = Function("f")
        fn.add_block(BasicBlock("x"))
        with pytest.raises(ValueError, match="duplicate"):
            fn.add_block(BasicBlock("x"))

    def test_entry_is_first_block(self):
        fn = Function("f")
        first = fn.add_block(BasicBlock("one"))
        fn.add_block(BasicBlock("two"))
        assert fn.entry is first

    def test_block_lookup(self):
        fn = Function("f")
        block = fn.add_block(BasicBlock("x"))
        assert fn.block("x") is block
        with pytest.raises(KeyError):
            fn.block("nope")

    def test_new_label_avoids_collisions(self):
        fn = Function("f")
        fn.add_block(BasicBlock("b0"))
        fn.add_block(BasicBlock("b1"))
        label = fn.new_label()
        assert label not in {"b0", "b1"}

    def test_all_temps_first_appearance_order(self):
        fn = Function("f")
        block = fn.add_block(BasicBlock("b"))
        a, b = fn.new_temp(G), fn.new_temp(G)
        block.append(make(Op.MOV, defs=[b], uses=[a]))
        block.append(ret())
        assert fn.all_temps() == [b, a]

    def test_note_temp_ids_bumps_counter(self):
        fn = Function("f")
        block = fn.add_block(BasicBlock("b"))
        block.append(make(Op.LI, defs=[fn.new_temp(G)], imm=1))
        # Simulate a parser writing a high-id temp directly.
        from repro.ir.temp import Temp
        block.append(make(Op.LI, defs=[Temp(G, 41)], imm=2))
        block.append(ret())
        fn.note_temp_ids()
        assert fn.new_temp(G).id == 42


class TestModule:
    def test_global_layout_is_contiguous_above_guard(self):
        module = Module()
        a = module.add_global("a", G, 10)
        b = module.add_global("b", G, 5)
        assert a.base == HEAP_BASE
        assert b.base == HEAP_BASE + 10
        assert module.heap_size == HEAP_BASE + 15

    def test_duplicate_names_rejected(self):
        module = Module()
        module.add_global("a", G, 1)
        with pytest.raises(ValueError):
            module.add_global("a", G, 1)
        module.add_function(Function("f"))
        with pytest.raises(ValueError):
            module.add_function(Function("f"))

    def test_initializer_length_checked(self):
        module = Module()
        with pytest.raises(ValueError, match="longer"):
            module.add_global("a", G, 2, (1, 2, 3))

    def test_nonpositive_size_rejected(self):
        module = Module()
        with pytest.raises(ValueError, match="positive"):
            module.add_global("a", G, 0)

    def test_function_lookup_error(self):
        with pytest.raises(KeyError, match="nope"):
            Module().function("nope")
