"""Bit vectors, the generic solver, and liveness."""

import pytest

from repro.cfg.cfg import CFG
from repro.dataflow.bitvector import TempIndex, bits_of, popcount, translate_mask
from repro.dataflow.framework import DataflowProblem, Direction, solve
from repro.dataflow.liveness import compute_liveness, global_temps
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.temp import Temp
from repro.ir.types import RegClass

G = RegClass.GPR


class TestBitVector:
    def test_bits_of_orders_ascending(self):
        assert list(bits_of(0)) == []
        assert list(bits_of(0b101001)) == [0, 3, 5]

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount((1 << 100) | 7) == 4

    def test_temp_index_round_trip(self):
        temps = [Temp(G, i) for i in range(5)]
        index = TempIndex.of(temps)
        mask = index.mask_of([temps[1], temps[3]])
        assert index.temps_of(mask) == [temps[1], temps[3]]
        assert temps[2] in index
        assert index.bit(temps[4]) == 4

    def test_unindexed_temps_are_skipped(self):
        index = TempIndex.of([Temp(G, 0)])
        stranger = Temp(G, 99)
        assert index.bit_or_none(stranger) is None
        assert index.mask_of([stranger]) == 0
        with pytest.raises(KeyError):
            index.bit(stranger)

    def test_translation_table_reindexes_masks(self):
        temps = [Temp(G, i) for i in range(4)]
        index = TempIndex.of(temps)
        target = {temps[0]: 5, temps[2]: 1}  # temps[1]/[3] dropped
        table = index.translation_table(target.get)
        assert table == [1 << 5, 0, 1 << 1, 0]
        assert translate_mask(0b1111, table) == (1 << 5) | (1 << 1)
        assert translate_mask(0b1010, table) == 0  # only dropped bits set
        assert translate_mask(0, table) == 0


def loop_function():
    """x defined in entry, used in a loop body; y local to the body."""
    fn = Function("f")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    x = b.li(10)
    b.jmp("head")
    b.new_block("head")
    cond = b.slt(b.li(0), x)
    b.br(cond, "body", "out")
    b.new_block("body")
    y = b.addi(x, -1)
    b.mov(y, dst=x)
    b.jmp("head")
    b.new_block("out")
    b.print_(x)
    b.ret(x)
    return fn, x, y


class TestLiveness:
    def test_global_temps_exclude_block_locals(self):
        fn, x, y = loop_function()
        globals_ = global_temps(fn)
        assert x in globals_
        assert y not in globals_  # defined and used within one block

    def test_live_sets_of_loop(self):
        fn, x, y = loop_function()
        info = compute_liveness(fn)
        bit = 1 << info.index.bit(x)
        assert info.live_out["entry"] & bit
        assert info.live_in["head"] & bit
        assert info.live_out["body"] & bit
        assert info.live_in["out"] & bit
        # x dies at the ret; nothing is live out of "out".
        assert info.live_out["out"] == 0

    def test_iteration_count_small(self):
        fn, *_ = loop_function()
        info = compute_liveness(fn)
        # The paper's observation: a couple of iterations suffice.
        assert info.iterations <= 4

    def test_helper_accessors(self):
        fn, x, y = loop_function()
        info = compute_liveness(fn)
        assert info.live_in_temps("head") == [x]
        assert info.live_out_temps("out") == []

    def test_global_temps_order_is_pinned(self):
        # The TempIndex bit layout is part of the repo's determinism
        # contract: concatenation over blocks of each block's
        # upward-exposed temps in sorted order, first occurrence kept.
        fn = Function("f")
        t = [fn.new_temp(G) for _ in range(6)]
        b = FunctionBuilder(fn)
        b.new_block("b0")
        b.print_(t[5])
        b.print_(t[2])
        b.jmp("b1")
        b.new_block("b1")
        b.print_(t[4])
        b.print_(t[2])  # already placed by b0 — must not move
        b.print_(t[1])
        b.ret(t[1])
        assert global_temps(fn) == [t[2], t[5], t[1], t[4]]
        index = compute_liveness(fn).index
        assert [index.bit(x) for x in (t[2], t[5], t[1], t[4])] == [0, 1, 2, 3]

    def test_second_def_does_not_duplicate_kill(self):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        x = b.li(1)
        b.li(2, dst=x)  # second def of x in the same block
        b.jmp("out")
        b.new_block("out")
        b.print_(x)
        b.ret(x)
        from repro.dataflow.liveness import _block_local_sets

        ue, kill = _block_local_sets(fn)
        assert kill["entry"] == [x]
        assert ue["entry"] == []
        assert ue["out"] == [x]


class TestGenericSolver:
    def test_forward_reaching_like_problem(self):
        # entry defines bit0; body defines bit1; both reach "out".
        fn, *_ = loop_function()
        cfg = CFG.build(fn)
        gen = {"entry": 0b01, "head": 0, "body": 0b10, "out": 0}
        kill = {label: 0 for label in gen}
        result = solve(DataflowProblem(cfg, Direction.FORWARD, gen, kill))
        assert result.out["out"] == 0b11
        assert result.in_["head"] == 0b11  # via the back edge
        assert result.in_["entry"] == 0

    def test_unreachable_blocks_covered_in_block_order(self):
        # Unreachable blocks still get defined in/out values, appended
        # after the reachable order in fn.blocks order — with many
        # blocks, so a reintroduced per-label membership rebuild (the
        # old quadratic scan) would also be felt as a slowdown here.
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.ret(b.li(0))
        n = 150
        prev = None
        chain = []
        for i in range(n):
            b.new_block(f"dead{i}")
            t = b.li(i) if prev is None else b.addi(prev, 1)
            chain.append(t)
            if i < n - 1:
                b.jmp(f"dead{i + 1}")
            else:
                b.ret(t)
            prev = t
        info = compute_liveness(fn)
        labels = [block.label for block in fn.blocks]
        assert list(info.live_in) == labels
        assert list(info.live_out) == labels
        # Liveness propagates through the unreachable chain too.
        for i in range(1, n):
            bit = 1 << info.index.bit(chain[i - 1])
            assert info.live_in[f"dead{i}"] & bit
            assert info.live_out[f"dead{i - 1}"] & bit
        assert info.live_out[f"dead{n - 1}"] == 0

    def test_kill_masks_stop_propagation(self):
        fn, *_ = loop_function()
        cfg = CFG.build(fn)
        gen = {"entry": 0b1, "head": 0, "body": 0, "out": 0}
        kill = {"entry": 0, "head": 0b1, "body": 0, "out": 0}
        result = solve(DataflowProblem(cfg, Direction.FORWARD, gen, kill))
        assert result.out["head"] == 0
        assert result.out["out"] == 0
