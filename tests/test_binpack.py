"""Second-chance binpacking behaviour tests.

These target the paper's mechanisms directly: hole sharing, best-fit and
insufficient-hole selection, second-chance splitting, consistency-elided
stores, early second chance, move elimination, and the resolution
examples of Figure 2.
"""

import pytest

from repro.allocators import SecondChanceBinpacking
from repro.allocators.base import AllocationStats, allocate_module
from repro.allocators.binpack.allocator import BinpackOptions
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillKind, SpillPhase
from repro.ir.module import Module
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.target import tiny
from repro.target.machine import MachineDescription

G = RegClass.GPR


def two_reg_machine() -> MachineDescription:
    """Figure 2's premise: "assume that we have only two registers" — we
    use the smallest legal tiny machine and confine the test program to
    low pressure so only a couple of registers matter."""
    return tiny(4, 4)


def run_binpack(module: Module, machine, options: BinpackOptions | None = None):
    return run_allocator(module, SecondChanceBinpacking(options), machine)


def figure2_module() -> Module:
    """The paper's Figure 2: T1 defined in B1, spilled in B2 by pressure,
    used again in B3 where it gets a *different* register (the second
    chance), forcing resolution code on B2->B4 and B1->B3."""
    module = Module()
    fn = Function("main")
    b = FunctionBuilder(fn)
    b.new_block("B1")
    t1 = b.temp(G, "T1")
    b.li(11, dst=t1)          # i1: T1 <- ..
    b.print_(t1)              # i2: .. <- T1
    cond = b.li(1)
    b.br(cond, "B2", "B3")
    b.new_block("B2")
    # Three overlapping lifetimes to force T1 out on a 3-ish register
    # budget (the figure uses 2 registers and 3 lifetimes).
    a = b.li(1)
    c = b.li(2)
    d = b.li(3)
    e = b.add(a, c)
    f = b.add(e, d)
    g = b.add(f, a)
    h = b.add(g, c)
    b.print_(h)
    b.jmp("B4")
    b.new_block("B3")
    b.print_(t1)              # i3: .. <- T1
    b.li(99, dst=t1)          # i4: T1 <- ..
    b.print_(t1)
    b.jmp("B4")
    b.new_block("B4")
    b.ret()
    module.add_function(fn)
    return module


class TestFigure2:
    def test_output_preserved_and_resolution_emitted(self):
        machine = two_reg_machine()
        module = figure2_module()
        reference = simulate(module, machine)
        result = run_binpack(module, machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)

    def test_spill_happens_under_pressure(self):
        machine = two_reg_machine()
        result = run_binpack(figure2_module(), machine)
        static = result.stats.spill_static
        assert any(phase is SpillPhase.EVICT for phase, _ in static), static


def straightline_module(n_values: int, machine) -> Module:
    """n long-lived ints defined up front, all consumed at the end."""
    module = Module()
    fn = Function("main")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    values = [b.li(i) for i in range(n_values)]
    acc = b.li(0)
    for v in values:
        acc = b.add(acc, v)
    b.print_(acc)
    b.ret(acc)
    module.add_function(fn)
    return module


class TestPressure:
    def test_fits_without_spill_when_enough_registers(self):
        machine = tiny(8, 4)
        module = straightline_module(5, machine)
        result = run_binpack(module, machine)
        assert not result.stats.spill_static

    def test_spills_when_over_subscribed(self):
        machine = tiny(4, 4)
        module = straightline_module(10, machine)
        reference = simulate(module, machine)
        result = run_binpack(module, machine)
        assert result.stats.spill_static  # must spill something
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)

    def test_postponed_store_elided_for_dead_values(self):
        """A spilled value that is never referenced again must not pay a
        store (the consistency/hole logic, Section 2.3)."""
        machine = tiny(4, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        dead = [b.li(i) for i in range(3)]
        live = [b.li(10 + i) for i in range(6)]  # evicts the dead ones
        acc = b.li(0)
        for v in live:
            acc = b.add(acc, v)
        b.print_(acc)
        b.ret(acc)
        module.add_function(fn)
        result = run_binpack(module, machine)
        outcome = simulate(result.module, machine)
        assert outcome.output == [sum(range(10, 16))]


class TestHoleSharing:
    def test_two_temps_share_one_register_through_a_hole(self):
        """T3 inside T1's hole (Figure 1): with exactly one usable
        register beyond the convention ones, the program still allocates
        without spill code."""
        machine = tiny(4, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        t1 = b.temp(G, "T1")
        b.li(5, dst=t1)
        b.print_(t1)          # T1's last use before its hole
        t3 = b.li(7)          # fits inside T1's hole
        b.print_(t3)
        b.li(6, dst=t1)       # T1's hole ends (redefinition)
        b.print_(t1)
        b.ret()
        module.add_function(fn)
        result = run_binpack(module, machine)
        outcome = simulate(result.module, machine)
        assert outcome.output == [5, 7, 6]
        assert not result.stats.spill_static

    def test_disabling_holes_is_still_correct(self):
        machine = tiny(5, 4)
        module = straightline_module(8, machine)
        reference = simulate(module, machine)
        result = run_binpack(module, machine,
                             BinpackOptions(use_holes=False))
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)


class TestMoveElimination:
    def _param_move_module(self, machine):
        """A leaf callee whose parameter move can collapse (Section 2.5's
        Alpha calling-convention motivation)."""
        module = Module()
        callee = Function("leaf")
        cb = FunctionBuilder(callee)
        cb.new_block("entry")
        p = callee.new_temp(G, "p")
        callee.params.append(p)
        arg = machine.param_regs(G)[0]
        cb.emit(Instr(Op.MOV, defs=[p], uses=[arg]))
        doubled = cb.add(p, p)
        ret = machine.ret_reg(G)
        cb.emit(Instr(Op.MOV, defs=[ret], uses=[doubled]))
        cb.ret(ret)
        module.add_function(callee)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.emit(Instr(Op.MOV, defs=[arg], uses=[b.li(21)]))
        b.call("leaf", arg_regs=[arg], ret_reg=ret)
        out = b.mov(ret)
        b.print_(out)
        b.ret(out)
        module.add_function(fn)
        return module

    def test_parameter_move_collapses(self):
        machine = tiny(6, 4)
        module = self._param_move_module(machine)
        with_opt = run_binpack(module, machine)
        without = run_binpack(module, machine,
                              BinpackOptions(move_elimination=False))
        assert with_opt.stats.moves_eliminated > 0
        assert without.stats.moves_eliminated == 0
        # Eliminated moves become self-moves and vanish in the peephole.
        assert with_opt.moves_removed >= without.moves_removed
        a = simulate(with_opt.module, machine)
        b = simulate(without.module, machine)
        assert a.output == b.output == [42]
        assert a.dynamic_instructions <= b.dynamic_instructions


class TestEarlySecondChance:
    def test_eviction_store_becomes_move(self):
        """A value live across a call in a caller-saved register moves to
        an (already used) register instead of paying store+load."""
        machine = tiny(8, 4)
        module = Module()
        helper = Function("noop")
        hb = FunctionBuilder(helper)
        hb.new_block("entry")
        hb.ret()
        module.add_function(helper)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        # Fill some callee-saved registers so ever_used is non-empty.
        keep = [b.li(i) for i in range(4)]
        x = b.li(77)
        b.call("noop")
        b.print_(x)
        for v in keep:
            b.print_(v)
        b.ret()
        module.add_function(fn)
        with_esc = run_binpack(module, machine)
        without = run_binpack(module, machine,
                              BinpackOptions(early_second_chance=False))
        out_with = simulate(with_esc.module, machine)
        out_without = simulate(without.module, machine)
        assert outputs_equal(out_with.output, out_without.output)
        moves_with = with_esc.stats.spill_static.get(
            (SpillPhase.EVICT, "move"), 0)
        assert moves_with >= without.stats.spill_static.get(
            (SpillPhase.EVICT, "move"), 0)


class TestConsistency:
    def _reload_loop_module(self, machine):
        """A read-only value reloaded in a loop containing a call: its
        evictions should never store (memory stays consistent)."""
        module = Module()
        helper = Function("noop")
        hb = FunctionBuilder(helper)
        hb.new_block("entry")
        hb.ret()
        module.add_function(helper)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        pinned = [b.li(100 + i) for i in range(6)]  # take the callee-saved
        counter = b.li(3)
        b.jmp("head")
        b.new_block("head")
        b.br(b.slt(b.li(0), counter), "body", "out")
        b.new_block("body")
        b.call("noop")
        for v in pinned:
            b.print_(v)
        b.mov(b.addi(counter, -1), dst=counter)
        b.jmp("head")
        b.new_block("out")
        b.ret()
        module.add_function(fn)
        return module

    def test_variants_agree_on_output(self):
        machine = tiny(6, 4)
        module = self._reload_loop_module(machine)
        reference = simulate(module, machine)
        for options in (BinpackOptions(),
                        BinpackOptions(avoid_consistent_stores=False),
                        BinpackOptions(conservative_consistency=True)):
            result = run_binpack(module, machine, options)
            outcome = simulate(result.module, machine)
            assert outputs_equal(outcome.output, reference.output), options

    def test_consistency_avoids_stores(self):
        machine = tiny(6, 4)
        module = self._reload_loop_module(machine)
        smart = run_binpack(module, machine)
        naive = run_binpack(module, machine,
                            BinpackOptions(avoid_consistent_stores=False))
        smart_stores = simulate(smart.module, machine).spill_counts.get(
            (SpillPhase.EVICT, SpillKind.STORE), 0)
        naive_stores = simulate(naive.module, machine).spill_counts.get(
            (SpillPhase.EVICT, SpillKind.STORE), 0)
        assert smart_stores <= naive_stores

    def test_dataflow_iterations_recorded(self):
        machine = tiny(6, 4)
        module = self._reload_loop_module(machine)
        result = run_binpack(module, machine)
        iters = result.stats.dataflow_iterations
        assert "main" in iters
        # The paper: "terminates in two or three iterations at most".
        assert 0 < iters["main"] <= 4


class TestReservedMemoParity:
    """The memoized reserved-range lookups must not change allocation."""

    def test_allocation_identical_with_memo_disabled(self, monkeypatch):
        from repro.ir.printer import print_module
        from repro.lifetimes.intervals import RangeSet
        from repro.workloads.programs import build_program

        machine = tiny(6, 4)
        module = build_program("doduc", machine)
        with_memo = print_module(run_binpack(module, machine).module)
        # Route every memoized query straight to the unmemoized bisect:
        # the allocator's output must be byte-identical.
        monkeypatch.setattr(RangeSet, "next_covered_memo",
                            RangeSet.next_covered_at_or_after)
        monkeypatch.setattr(RangeSet, "overlaps_interval_memo",
                            RangeSet.overlaps_interval)
        without_memo = print_module(run_binpack(module, machine).module)
        assert with_memo == without_memo
