"""Simulator semantics: arithmetic, memory, faults, and strictness."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.ir.temp import PhysReg, StackSlot
from repro.ir.types import RegClass
from repro.sim import SimulationError, simulate
from repro.sim.machine import outputs_equal
from repro.target import tiny

G = RegClass.GPR
F = RegClass.FPR


def run_main(build, machine=None, **kwargs):
    """Build main with ``build(builder)`` and simulate it."""
    module = Module()
    fn = Function("main")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    build(b, module)
    module.add_function(fn)
    return simulate(module, machine or tiny(), **kwargs)


class TestIntegerSemantics:
    def test_wrapping_at_64_bits(self):
        def build(b, m):
            big = b.li(2 ** 62)
            four = b.li(4)
            b.print_(b.mul(big, four))  # 2**64 wraps to 0
            b.ret()
        assert run_main(build).output == [0]

    def test_signed_wrap_to_negative(self):
        def build(b, m):
            big = b.li(2 ** 63 - 1)
            b.print_(b.addi(big, 1))
            b.ret()
        assert run_main(build).output == [-(2 ** 63)]

    @pytest.mark.parametrize("a,b,q,r", [
        (7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1),
    ])
    def test_division_truncates_toward_zero(self, a, b, q, r):
        def build(bd, m):
            x, y = bd.li(a), bd.li(b)
            bd.print_(bd.div(x, y))
            bd.print_(bd.rem(x, y))
            bd.ret()
        assert run_main(build).output == [q, r]

    def test_division_by_zero_faults(self):
        def build(b, m):
            b.print_(b.div(b.li(1), b.li(0)))
            b.ret()
        with pytest.raises(SimulationError, match="division by zero"):
            run_main(build)

    def test_shift_semantics(self):
        def build(b, m):
            x = b.li(-16)
            b.print_(b.shr(x, b.li(2)))   # arithmetic: -4
            b.print_(b.shl(b.li(3), b.li(62)))  # wraps
            b.ret()
        out = run_main(build).output
        assert out[0] == -4
        assert out[1] == -(2 ** 62)  # 3<<62 wraps to 0xC000... = -2**62

    def test_comparisons_produce_zero_one(self):
        def build(b, m):
            x, y = b.li(3), b.li(5)
            for op in ("slt", "sle", "seq", "sne"):
                b.print_(getattr(b, op)(x, y))
            b.ret()
        assert run_main(build).output == [1, 1, 0, 1]


class TestFloatSemantics:
    def test_conversions(self):
        def build(b, m):
            f = b.itof(b.li(-3))
            b.print_(f)
            b.print_(b.ftoi(b.fli(2.9)))
            b.print_(b.ftoi(b.fli(-2.9)))
            b.ret()
        assert run_main(build).output == [-3.0, 2, -2]

    def test_ftoi_of_nonfinite_faults(self):
        def build(b, m):
            inf = b.fdiv(b.fli(1.0), b.fli(1e-310))
            b.print_(b.ftoi(inf))
            b.ret()
        with pytest.raises(SimulationError, match="non-finite"):
            run_main(build)

    def test_float_compare_defines_int(self):
        def build(b, m):
            b.print_(b.fslt(b.fli(1.0), b.fli(2.0)))
            b.ret()
        out = run_main(build).output
        assert out == [1] and isinstance(out[0], int)


class TestMemory:
    def test_global_arrays_initialized_and_typed(self):
        def build(b, m):
            arr = m.add_global("a", G, 3, (7, 8))
            base = b.li(arr.base)
            b.print_(b.ld(base, 0))
            b.print_(b.ld(base, 1))
            b.print_(b.ld(base, 2))  # default fill
            b.ret()
        assert run_main(build).output == [7, 8, 0]

    def test_out_of_bounds_faults(self):
        def build(b, m):
            m.add_global("a", G, 2)
            b.print_(b.ld(b.li(10 ** 6), 0))
            b.ret()
        with pytest.raises(SimulationError, match="out of bounds"):
            run_main(build)

    def test_guard_zone_faults(self):
        def build(b, m):
            m.add_global("a", G, 2)
            b.print_(b.ld(b.li(0), 0))
            b.ret()
        with pytest.raises(SimulationError, match="out of bounds"):
            run_main(build)

    def test_type_confusion_faults(self):
        def build(b, m):
            arr = m.add_global("a", F, 2)
            b.print_(b.ld(b.li(arr.base), 0))  # int load of float cell
            b.ret()
        with pytest.raises(SimulationError, match="integer load of float"):
            run_main(build)

    def test_never_written_slot_faults(self):
        def build(b, m):
            b.lds(StackSlot(0, G), b.temp())
            b.ret()
        with pytest.raises(SimulationError, match="never-written"):
            run_main(build)

    def test_slot_round_trip(self):
        def build(b, m):
            x = b.li(99)
            b.sts(x, StackSlot(2, G))
            y = b.lds(StackSlot(2, G), b.temp())
            b.print_(y)
            b.ret()
        assert run_main(build).output == [99]


class TestCallsAndStrictness:
    def _module_with_callee(self, machine, caller_build):
        module = Module()
        callee = Function("id")
        cb = FunctionBuilder(callee)
        cb.new_block("entry")
        arg = machine.param_regs(G)[0]
        ret = machine.ret_reg(G)
        cb.emit(Instr(Op.MOV, defs=[ret], uses=[arg]))
        cb.ret(ret)
        module.add_function(callee)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        caller_build(b, machine)
        module.add_function(fn)
        return module

    def test_poisoning_catches_live_caller_saved_values(self):
        machine = tiny()
        caller_saved = next(r for r in machine.caller_saved(G)
                            if r not in machine.param_regs(G)
                            and r != machine.ret_reg(G))

        def caller(b, mach):
            b.emit(Instr(Op.LI, defs=[caller_saved], imm=123))
            b.emit(Instr(Op.MOV, defs=[mach.param_regs(G)[0]],
                         uses=[caller_saved]))
            b.call("id", arg_regs=[mach.param_regs(G)[0]],
                   ret_reg=mach.ret_reg(G))
            b.emit(Instr(Op.PRINT, uses=[caller_saved]))  # stale!
            b.ret()

        module = self._module_with_callee(machine, caller)
        poisoned = simulate(module, machine, poison_calls=True)
        assert poisoned.output != [123]
        relaxed = simulate(module, machine, poison_calls=False)
        assert relaxed.output == [123]

    def test_callee_saved_clobber_detected(self):
        machine = tiny()
        callee_saved = machine.callee_saved(G)[0]
        module = Module()
        bad = Function("bad")
        bb = FunctionBuilder(bad)
        bb.new_block("entry")
        bb.emit(Instr(Op.LI, defs=[callee_saved], imm=5))
        bb.ret()
        module.add_function(bad)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.call("bad")
        b.ret()
        module.add_function(fn)
        with pytest.raises(SimulationError, match="callee-saved"):
            simulate(module, machine)
        simulate(module, machine, check_callee_saved=False)  # relaxed passes

    def test_return_value_transport(self):
        machine = tiny()

        def caller(b, mach):
            b.emit(Instr(Op.MOV, defs=[mach.param_regs(G)[0]], uses=[b.li(17)]))
            b.call("id", arg_regs=[mach.param_regs(G)[0]],
                   ret_reg=mach.ret_reg(G))
            result = b.mov(mach.ret_reg(G))
            b.print_(result)
            b.ret(result)

        module = self._module_with_callee(machine, caller)
        outcome = simulate(module, machine)
        assert outcome.output == [17]
        assert outcome.result == 17

    def test_step_budget_enforced(self):
        def build(b, m):
            b.jmp("spin")
            b.new_block("spin")
            b.jmp("spin")
        with pytest.raises(SimulationError, match="step budget"):
            run_main(build, max_steps=1000)

    def test_recursion_depth_limited(self):
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.call("main")
        b.ret()
        module.add_function(fn)
        with pytest.raises(SimulationError, match="depth"):
            simulate(module, tiny())


class TestCounting:
    def test_dynamic_counts_and_cycles(self):
        def build(b, m):
            x = b.li(2)          # 1 cycle
            y = b.mul(x, x)      # 4 cycles
            b.print_(y)          # 1
            b.ret()              # 1
        outcome = run_main(build)
        assert outcome.dynamic_instructions == 4
        assert outcome.cycles == 7
        assert outcome.op_counts[Op.MUL] == 1


class TestOutputsEqual:
    def test_nan_equals_nan(self):
        nan = float("nan")
        assert outputs_equal([nan, 1.0], [nan, 1.0])

    def test_type_sensitivity(self):
        assert not outputs_equal([1], [1.0])

    def test_length_and_value_mismatches(self):
        assert not outputs_equal([1], [1, 2])
        assert not outputs_equal([1], [2])
        assert outputs_equal([], [])
