"""Graph-coloring allocator tests: the bit matrix, the interference
graph, coalescing behaviour, precolored constraints, and spilling."""

import pytest

from repro.allocators import GraphColoring
from repro.allocators.coloring.ifgraph import InterferenceGraph, TriangularBitMatrix
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.module import Module
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.target import tiny

G = RegClass.GPR


class TestTriangularBitMatrix:
    def test_symmetry(self):
        m = TriangularBitMatrix(10)
        m.set(3, 7)
        assert m.test(3, 7) and m.test(7, 3)
        assert not m.test(3, 6)

    def test_diagonal_is_never_set(self):
        m = TriangularBitMatrix(5)
        m.set(2, 2)
        assert not m.test(2, 2)

    def test_popcount_counts_pairs_once(self):
        m = TriangularBitMatrix(6)
        m.set(0, 1)
        m.set(1, 0)  # same edge
        m.set(2, 5)
        assert m.popcount() == 2

    def test_dense_fill(self):
        n = 20
        m = TriangularBitMatrix(n)
        for i in range(n):
            for j in range(i):
                m.set(i, j)
        assert m.popcount() == n * (n - 1) // 2
        assert all(m.test(i, j) for i in range(n) for j in range(i))


class TestInterferenceGraph:
    def setup_method(self):
        self.pre = [PhysReg(G, i) for i in range(2)]
        self.temps = [Temp(G, i) for i in range(4)]
        self.graph = InterferenceGraph(self.pre, self.temps)

    def test_add_edge_updates_degree_and_lists(self):
        a, b = self.temps[0], self.temps[1]
        self.graph.add_edge(a, b)
        self.graph.add_edge(a, b)  # idempotent
        assert self.graph.degree[a] == 1
        assert list(self.graph.adj_list[b]) == [a]
        assert self.graph.interferes(a, b)
        assert self.graph.edge_count() == 1

    def test_precolored_have_infinite_degree_and_no_lists(self):
        reg, temp = self.pre[0], self.temps[0]
        before = self.graph.degree[reg]
        self.graph.add_edge(reg, temp)
        assert self.graph.degree[reg] == before  # unchanged
        assert self.graph.degree[temp] == 1
        assert reg not in self.graph.adj_list
        assert self.graph.interferes(temp, reg)

    def test_self_edge_ignored(self):
        t = self.temps[0]
        self.graph.add_edge(t, t)
        assert self.graph.degree[t] == 0


def diamond_program(machine):
    module = Module()
    fn = Function("main")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    x = b.li(10)
    y = b.li(20)
    b.br(b.slt(x, y), "left", "right")
    b.new_block("left")
    z = b.add(x, y)
    b.print_(z)
    b.jmp("join")
    b.new_block("right")
    b.print_(x)
    b.jmp("join")
    b.new_block("join")
    b.print_(y)
    b.ret(y)
    module.add_function(fn)
    return module


class TestAllocation:
    def test_simple_program_allocates_without_spill(self):
        machine = tiny(6, 4)
        module = diamond_program(machine)
        reference = simulate(module, machine)
        result = run_allocator(module, GraphColoring(), machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)
        assert not result.stats.spill_static
        assert result.stats.coloring_iterations["main"] == 2  # one per file

    def test_move_coalescing_removes_copies(self):
        machine = tiny(8, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        x = b.li(5)
        y = b.mov(x)   # coalescable
        z = b.mov(y)   # coalescable
        b.print_(z)
        b.ret(z)
        module.add_function(fn)
        result = run_allocator(module, GraphColoring(), machine)
        # Both moves become self-moves and are peepholed away.
        assert result.moves_removed >= 2
        assert simulate(result.module, machine).output == [5]

    def test_interfering_moves_are_constrained_not_merged(self):
        machine = tiny(8, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        x = b.li(5)
        y = b.mov(x)
        b.addi(x, 1, dst=x)   # x live past the move and modified
        b.print_(x)
        b.print_(y)           # y must still be 5
        b.ret()
        module.add_function(fn)
        result = run_allocator(module, GraphColoring(), machine)
        assert simulate(result.module, machine).output == [6, 5]

    def test_spill_and_iterate_converges_under_pressure(self):
        machine = tiny(4, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        vals = [b.li(i) for i in range(9)]
        acc = b.li(0)
        for v in vals:
            acc = b.add(acc, v)
        b.print_(acc)
        b.ret(acc)
        module.add_function(fn)
        reference = simulate(module, machine)
        result = run_allocator(module, GraphColoring(), machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)
        assert result.stats.spill_static.get((SpillPhase.EVICT, "load"), 0) > 0
        assert result.stats.coloring_iterations["main"] > 2  # re-colored

    def test_call_clobbers_force_callee_saved_or_spill(self):
        machine = tiny(6, 4)
        module = Module()
        helper = Function("noop")
        hb = FunctionBuilder(helper)
        hb.new_block("entry")
        hb.ret()
        module.add_function(helper)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        x = b.li(123)
        b.call("noop")
        b.print_(x)  # x lives across the call
        b.ret()
        module.add_function(fn)
        result = run_allocator(module, GraphColoring(), machine)
        # Poisoning would catch a caller-saved assignment.
        assert simulate(result.module, machine).output == [123]

    def test_edge_statistics_recorded(self):
        machine = tiny(6, 4)
        result = run_allocator(diamond_program(machine), GraphColoring(),
                               machine)
        assert result.stats.interference_edges["main"] > 0
