"""The differential fuzzer: generator, harness, and shrinker.

The expensive claim — "the whole grid matches the oracle on hundreds of
seeds" — lives in CI's fuzz-smoke job, not here.  This file pins the
machinery itself: seeds are deterministic, a clean run reports clean,
the ddmin shrinker actually shrinks within budget, and — the
end-to-end proof — an intentionally broken ``sequentialize_moves``
(one that ignores move cycles) is caught, attributed, and minimized.
"""

from __future__ import annotations

import pytest

from repro.allocators.binpack import resolution
from repro.fuzz import (CONFIG_GRID, check_config, fuzz, program_for_seed,
                        run_seed, shrink_module)
from repro.fuzz.shrink import physreg_uses_are_block_local, reference_outcome
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.printer import print_module


def _size(module) -> int:
    return sum(fn.instruction_count() for fn in module.functions.values())


class TestGenerator:
    @pytest.mark.parametrize("seed", [0, 1, 7, 13])
    def test_deterministic(self, seed):
        a = program_for_seed(seed)
        b = program_for_seed(seed)
        assert a.describe == b.describe
        assert print_module(a.module) == print_module(b.module)

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_programs_are_valid_oracles(self, seed):
        program = program_for_seed(seed)
        assert reference_outcome(program.module, program.machine) is not None


class TestHarness:
    def test_clean_run_reports_clean(self):
        report = fuzz(range(2))
        assert report.ok
        assert report.seeds == 2
        assert report.checks == 2 * len(CONFIG_GRID)
        assert report.invalid_seeds == 0
        assert "0 divergence(s)" in report.format()

    def test_config_grid_names_are_unique(self):
        names = [c.name for c in CONFIG_GRID]
        assert len(names) == len(set(names))

    def test_check_config_matches_oracle(self):
        program = program_for_seed(3)
        ref = reference_outcome(program.module, program.machine)
        for config in CONFIG_GRID:
            found = check_config(program.module, program.machine, config, ref)
            assert found is None or found[0] == "skip"


class TestShrinker:
    def test_ddmin_shrinks_and_respects_budget(self):
        program = program_for_seed(1)
        calls = 0

        def still_fails(candidate) -> bool:
            nonlocal calls
            calls += 1
            return _size(candidate) >= 1  # any nonempty module "fails"

        shrunk = shrink_module(program.module, still_fails, budget=120)
        assert calls <= 120
        assert _size(shrunk) < _size(program.module)
        assert still_fails(shrunk)
        # Terminators are never deleted: every block stays well-formed.
        for fn in shrunk.functions.values():
            for block in fn.blocks:
                assert block.instrs and block.instrs[-1].is_terminator

    def test_invalid_candidates_never_reach_the_predicate(self):
        """ddmin must not hand out modules that break the allocators'
        input contract — e.g. a ``ret r0`` whose feeding ``mov r0, t``
        was deleted leaves r0 live across code the allocator may
        clobber, and any divergence on it would be the shrinker's fault."""
        program = program_for_seed(0)

        def still_fails(candidate) -> bool:
            if reference_outcome(candidate, program.machine,
                                 max_steps=200_000) is None:
                return False
            return _size(candidate) >= 1

        shrunk = shrink_module(program.module, still_fails, budget=150)
        assert physreg_uses_are_block_local(shrunk, program.machine)

    def test_dead_helpers_are_dropped(self):
        program = program_for_seed(1)
        assert len(program.module.functions) > 1
        shrunk = shrink_module(program.module, lambda m: "main" in m.functions,
                               budget=300)
        # With the only requirement being "main exists", every call site is
        # deletable, so the helper post-pass removes the helpers too.
        assert set(shrunk.functions) == {"main"}


def _naive_sequentialize(moves, emitter, stats):
    """A deliberately broken variant: emits moves in arbitrary order,
    clobbering sources that cycles still need (the classic swap bug the
    paper's Section 2.4 warns about)."""
    out = []
    for src, dst, temp in moves:
        if src == dst:
            continue
        op = Op.MOV if temp.regclass.name == "GPR" else Op.FMOV
        out.append(Instr(op, defs=[dst], uses=[src],
                         spill_phase=SpillPhase.RESOLVE))
    return out


class TestInjectedBugEndToEnd:
    def test_cycle_ignoring_resolution_is_caught_and_shrunk(self, monkeypatch):
        monkeypatch.setattr(resolution, "sequentialize_moves",
                            _naive_sequentialize)
        grid = tuple(c for c in CONFIG_GRID if c.name == "sc-default")
        report = run_seed(0, configs=grid, shrink=True, shrink_budget=80)
        # Seed 0 swaps registers across at least one edge, so the naive
        # sequentializer must diverge — and the dataflow verifier sees the
        # clobber statically, before the simulator even runs.
        assert not report.ok
        div = report.divergences[0]
        assert div.config == "sc-default"
        assert div.kind == "dataflow"
        assert div.shrunk_to <= div.shrunk_from
        assert div.module_text.strip()
        assert "dataflow" in div.format()
