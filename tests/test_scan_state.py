"""Unit tests for the binpacking scan state (occupancy + consistency)."""

import pytest

from repro.allocators.base import SharedAnalyses
from repro.allocators.binpack.state import MEM, BlockRecord, ScanState
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.target import tiny

G = RegClass.GPR


def make_state():
    """A state over a small two-block function with one global temp."""
    fn = Function("f")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    x = b.li(5)          # global: used in the next block
    b.jmp("next")
    b.new_block("next")
    y = b.addi(x, 1)     # y is block-local
    b.print_(y)
    b.ret()
    shared = SharedAnalyses.build(fn, tiny())
    state = ScanState(shared.lifetimes, shared.liveness, shared.cfg)
    return state, x, y


class TestOccupancy:
    def test_place_and_displace(self):
        state, x, _ = make_state()
        reg = PhysReg(G, 2)
        state.place(x, reg)
        assert state.loc[x] == reg
        assert state.occupants_of(reg) == [x]
        assert reg in state.ever_used
        state.displace(x)
        assert x not in state.loc
        assert state.occupants_of(reg) == []

    def test_prune_drops_expired_lifetimes(self):
        state, x, _ = make_state()
        reg = PhysReg(G, 2)
        state.place(x, reg)
        end = state.table.temps[x].end
        state.prune(reg, end + 2)
        assert state.occupants_of(reg) == []
        assert x not in state.loc

    def test_prune_keeps_live_occupants(self):
        state, x, _ = make_state()
        reg = PhysReg(G, 2)
        state.place(x, reg)
        state.prune(reg, state.table.temps[x].start)
        assert state.occupants_of(reg) == [x]

    def test_multiple_claimants(self):
        state, x, y = make_state()
        reg = PhysReg(G, 2)
        state.place(x, reg)
        state.place(y, reg)
        assert state.occupants_of(reg) == [x, y]
        state.displace(x)
        assert state.occupants_of(reg) == [y]
        assert state.loc[y] == reg


class TestConsistencyBits:
    def test_global_temp_uses_shared_vector(self):
        state, x, _ = make_state()
        assert not state.is_consistent(x)
        state.set_consistent(x)
        assert state.is_consistent(x)
        state.clear_consistent(x)
        assert not state.is_consistent(x)

    def test_clear_records_wrote_tr(self):
        state, x, _ = make_state()
        state.begin_block("entry")
        state.clear_consistent(x)
        record = state.end_block("entry")
        bit = state.liveness.index.bit(x)
        assert record.wrote_tr >> bit & 1

    def test_used_consistency_only_when_nonlocal(self):
        state, x, _ = make_state()
        state.begin_block("entry")
        state.set_consistent(x)
        state.note_consistency_used(x)  # W clear -> gen bit
        record = state.end_block("entry")
        bit = state.liveness.index.bit(x)
        assert record.used_consistency >> bit & 1

        state.begin_block("next")
        state.clear_consistent(x)       # local write
        state.set_consistent(x)         # local spill re-establishes
        state.note_consistency_used(x)  # W set -> no gen bit
        record2 = state.end_block("next")
        assert not (record2.used_consistency >> bit & 1)

    def test_block_local_temps_tracked_separately(self):
        state, _, y = make_state()
        state.begin_block("next")
        state.set_consistent(y)
        assert state.is_consistent(y)
        state.clear_consistent(y)
        assert not state.is_consistent(y)
        # Locals never set shared-vector bits.
        assert state.consistent == 0

    def test_local_consistency_resets_each_block(self):
        state, _, y = make_state()
        state.begin_block("entry")
        state.set_consistent(y)
        state.begin_block("next")
        assert not state.is_consistent(y)


class TestBlockRecords:
    def test_top_and_bottom_locations(self):
        state, x, _ = make_state()
        reg = PhysReg(G, 2)
        state.begin_block("entry")
        state.place(x, reg)
        record = state.end_block("entry")
        assert record.bottom_loc[x] == reg

        record2 = state.begin_block("next")
        assert record2.top_loc[x] == reg
        state.displace(x)
        final = state.end_block("next")
        assert final.bottom_loc == {}  # nothing live out of "next"

    def test_missing_location_defaults_to_memory(self):
        state, x, _ = make_state()
        record = state.begin_block("next")
        assert record.top_loc[x] is MEM

    def test_conservative_reinit_intersects_predecessors(self):
        state, x, _ = make_state()
        bit = state.liveness.index.bit(x)
        state.begin_block("entry")
        state.set_consistent(x)
        state.end_block("entry")
        state.begin_block("next")
        state.reinit_consistency_conservative("next")
        assert state.consistent >> bit & 1  # sole predecessor had it set

    def test_conservative_reinit_clears_without_predecessors(self):
        state, x, _ = make_state()
        state.set_consistent(x)
        state.reinit_consistency_conservative("entry")  # entry: no preds
        assert state.consistent == 0
