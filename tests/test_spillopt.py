"""The post-allocation spill-code cleanup (the paper's future-work pass)."""

import pytest

from repro.allocators import SecondChanceBinpacking, TwoPassBinpacking
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.module import Module
from repro.ir.temp import PhysReg, StackSlot
from repro.ir.types import RegClass
from repro.passes.spillopt import cleanup_spill_code
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.target import alpha, tiny
from repro.workloads.programs import build_program
from repro.workloads.synthetic import random_module

G = RegClass.GPR


def physical_fn():
    fn = Function("main")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    return fn, b


class TestStoreToLoadForwarding:
    def test_load_becomes_move(self):
        fn, b = physical_fn()
        r1, r2 = PhysReg(G, 1), PhysReg(G, 2)
        slot = StackSlot(0, G)
        b.emit(Instr(Op.LI, defs=[r1], imm=7))
        b.emit(Instr(Op.STS, uses=[r1], slot=slot,
                     spill_phase=SpillPhase.EVICT))
        b.emit(Instr(Op.LDS, defs=[r2], slot=slot,
                     spill_phase=SpillPhase.EVICT))
        b.emit(Instr(Op.PRINT, uses=[r2]))
        b.emit(Instr(Op.PRINT, uses=[r1]))  # keeps the store's source live
        b.ret()
        stats = cleanup_spill_code(fn)
        assert stats.loads_forwarded == 1
        ops = [i.op for i in fn.entry.instrs]
        assert Op.LDS not in ops
        assert Op.MOV in ops

    def test_forwarding_blocked_by_register_redefinition(self):
        fn, b = physical_fn()
        r1, r2 = PhysReg(G, 1), PhysReg(G, 2)
        slot = StackSlot(0, G)
        b.emit(Instr(Op.LI, defs=[r1], imm=7))
        b.emit(Instr(Op.STS, uses=[r1], slot=slot))
        b.emit(Instr(Op.LI, defs=[r1], imm=8))  # clobbers the source
        b.emit(Instr(Op.LDS, defs=[r2], slot=slot))
        b.emit(Instr(Op.PRINT, uses=[r2]))
        b.ret()
        stats = cleanup_spill_code(fn)
        assert stats.loads_forwarded == 0
        assert any(i.op is Op.LDS for i in fn.entry.instrs)

    def test_forwarding_blocked_by_call(self):
        module = Module()
        callee = Function("noop")
        cb = FunctionBuilder(callee)
        cb.new_block("entry")
        cb.ret()
        module.add_function(callee)
        fn, b = physical_fn()
        r1, r2 = PhysReg(G, 1), PhysReg(G, 2)
        slot = StackSlot(0, G)
        b.emit(Instr(Op.LI, defs=[r1], imm=7))
        b.emit(Instr(Op.STS, uses=[r1], slot=slot))
        b.call("noop")
        b.emit(Instr(Op.LDS, defs=[r2], slot=slot))
        b.emit(Instr(Op.PRINT, uses=[r2]))
        b.ret()
        module.add_function(fn)
        stats = cleanup_spill_code(fn)
        assert stats.loads_forwarded == 0

    def test_prologue_traffic_untouched(self):
        fn, b = physical_fn()
        r9 = PhysReg(G, 3)
        slot = StackSlot(0, G)
        b.emit(Instr(Op.STS, uses=[r9], slot=slot,
                     spill_phase=SpillPhase.PROLOGUE))
        b.emit(Instr(Op.LDS, defs=[r9], slot=slot,
                     spill_phase=SpillPhase.PROLOGUE))
        b.ret()
        stats = cleanup_spill_code(fn)
        assert stats.loads_forwarded == 0
        assert stats.stores_removed == 0
        assert [i.op for i in fn.entry.instrs[:2]] == [Op.STS, Op.LDS]


class TestDeadStoreElimination:
    def test_unread_store_removed(self):
        fn, b = physical_fn()
        r1 = PhysReg(G, 1)
        b.emit(Instr(Op.LI, defs=[r1], imm=7))
        b.emit(Instr(Op.STS, uses=[r1], slot=StackSlot(0, G),
                     spill_phase=SpillPhase.EVICT))
        b.ret()
        stats = cleanup_spill_code(fn)
        assert stats.stores_removed == 1
        assert all(i.op is not Op.STS for i in fn.entry.instrs)

    def test_store_read_on_one_path_survives(self):
        fn, b = physical_fn()
        r1, r2 = PhysReg(G, 1), PhysReg(G, 2)
        slot = StackSlot(0, G)
        b.emit(Instr(Op.LI, defs=[r1], imm=7))
        b.emit(Instr(Op.STS, uses=[r1], slot=slot))
        b.emit(Instr(Op.LI, defs=[r1], imm=1))
        b.emit(Instr(Op.BR, uses=[r1], targets=["reader", "skip"]))
        b.new_block("reader")
        b.emit(Instr(Op.LI, defs=[r1], imm=0))  # clobber: no forwarding
        b.emit(Instr(Op.LDS, defs=[r2], slot=slot))
        b.emit(Instr(Op.PRINT, uses=[r2]))
        b.jmp("skip")
        b.new_block("skip")
        b.ret()
        stats = cleanup_spill_code(fn)
        assert stats.stores_removed == 0

    def test_overwritten_store_removed(self):
        fn, b = physical_fn()
        r1 = PhysReg(G, 1)
        slot = StackSlot(0, G)
        b.emit(Instr(Op.LI, defs=[r1], imm=1))
        b.emit(Instr(Op.STS, uses=[r1], slot=slot))  # dead: overwritten
        b.emit(Instr(Op.LI, defs=[r1], imm=2))
        b.emit(Instr(Op.STS, uses=[r1], slot=slot))
        b.emit(Instr(Op.LDS, defs=[r1], slot=slot))
        b.emit(Instr(Op.PRINT, uses=[r1]))
        b.ret()
        stats = cleanup_spill_code(fn)
        # The forwarding pass may first turn the load into a move, after
        # which *both* stores die; either way the first store must go.
        assert stats.stores_removed >= 1


class TestEndToEnd:
    @pytest.mark.parametrize("seed", [3, 11, 29, 47])
    def test_cleanup_preserves_behaviour_on_random_programs(self, seed):
        machine = tiny(4, 4)
        module = random_module(seed, machine, size=22)
        reference = simulate(module, machine, max_steps=2_000_000)
        result = run_allocator(module, SecondChanceBinpacking(), machine,
                               spill_cleanup=True)
        outcome = simulate(result.module, machine, max_steps=4_000_000)
        assert outputs_equal(outcome.output, reference.output)

    def test_cleanup_reduces_twopass_loop_traffic(self):
        """Two-pass output is load-heavy; the cleanup should claw some
        back without changing behaviour."""
        machine = alpha()
        module = build_program("wc", machine)
        plain = run_allocator(module, TwoPassBinpacking(), machine)
        cleaned = run_allocator(module, TwoPassBinpacking(), machine,
                                spill_cleanup=True)
        out_plain = simulate(plain.module, machine)
        out_clean = simulate(cleaned.module, machine)
        assert outputs_equal(out_clean.output, out_plain.output)
        assert (cleaned.spill_cleanup.loads_forwarded
                + cleaned.spill_cleanup.stores_removed) > 0
        assert out_clean.dynamic_instructions <= out_plain.dynamic_instructions
