"""Unit tests for the IR atoms: register classes, temps, registers, slots."""

import pytest

from repro.ir.temp import PhysReg, StackSlot, Temp, is_phys, is_temp
from repro.ir.types import RegClass, zero_value


class TestRegClass:
    def test_prefixes(self):
        assert RegClass.GPR.prefix == "t"
        assert RegClass.FPR.prefix == "ft"

    def test_zero_values(self):
        assert zero_value(RegClass.GPR) == 0
        assert isinstance(zero_value(RegClass.GPR), int)
        assert zero_value(RegClass.FPR) == 0.0
        assert isinstance(zero_value(RegClass.FPR), float)

    def test_ordering_is_total_and_gpr_first(self):
        assert RegClass.GPR < RegClass.FPR
        assert not (RegClass.FPR < RegClass.GPR)
        assert sorted([RegClass.FPR, RegClass.GPR]) == [RegClass.GPR,
                                                        RegClass.FPR]


class TestTemp:
    def test_str_forms(self):
        assert str(Temp(RegClass.GPR, 3)) == "t3"
        assert str(Temp(RegClass.FPR, 7)) == "ft7"
        assert str(Temp(RegClass.GPR, 1, "acc")) == "t1.acc"

    def test_name_does_not_affect_equality(self):
        assert Temp(RegClass.GPR, 5, "x") == Temp(RegClass.GPR, 5, "y")
        assert hash(Temp(RegClass.GPR, 5, "x")) == hash(Temp(RegClass.GPR, 5))

    def test_sorting_groups_by_class_then_id(self):
        temps = [Temp(RegClass.FPR, 0), Temp(RegClass.GPR, 2),
                 Temp(RegClass.GPR, 1)]
        assert sorted(temps) == [Temp(RegClass.GPR, 1), Temp(RegClass.GPR, 2),
                                 Temp(RegClass.FPR, 0)]

    def test_distinct_classes_never_equal(self):
        assert Temp(RegClass.GPR, 0) != Temp(RegClass.FPR, 0)


class TestPhysRegAndSlot:
    def test_str_forms(self):
        assert str(PhysReg(RegClass.GPR, 4)) == "r4"
        assert str(PhysReg(RegClass.FPR, 12)) == "f12"
        assert str(StackSlot(3, RegClass.GPR)) == "[s3]"

    def test_kind_predicates(self):
        assert is_temp(Temp(RegClass.GPR, 0))
        assert not is_temp(PhysReg(RegClass.GPR, 0))
        assert is_phys(PhysReg(RegClass.FPR, 1))
        assert not is_phys(Temp(RegClass.FPR, 1))

    def test_temp_and_physreg_never_compare_equal(self):
        assert Temp(RegClass.GPR, 0) != PhysReg(RegClass.GPR, 0)
