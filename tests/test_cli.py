"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main

SRC = """
func int main() {
  int x = 6;
  int y = 7;
  print x * y;
  return 0;
}
"""


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SRC)
    return str(path)


class TestRun:
    def test_runs_and_prints_output(self, program, capsys):
        code = main(["run", program])
        out = capsys.readouterr()
        assert out.out.strip() == "42"
        assert "instructions" in out.err
        assert code == 0

    @pytest.mark.parametrize("allocator", ["second-chance", "two-pass",
                                           "coloring", "poletto"])
    def test_every_allocator_selectable(self, program, capsys, allocator):
        main(["run", program, "--allocator", allocator])
        assert capsys.readouterr().out.strip() == "42"

    def test_tiny_machine(self, program, capsys):
        main(["run", program, "--machine", "tiny"])
        assert capsys.readouterr().out.strip() == "42"

    def test_missing_file(self):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["run", "/nonexistent/prog.mc"])


class TestCompile:
    def test_virtual_dump_contains_temps(self, program, capsys):
        main(["compile", program])
        out = capsys.readouterr().out
        assert "func main(" in out
        assert "t0" in out

    def test_allocated_dump_contains_only_machine_registers(self, program,
                                                            capsys):
        main(["compile", program, "--allocate"])
        out = capsys.readouterr().out
        assert "r0" in out
        # No virtual registers survive (t<N> never followed by a digit-free
        # context; simplest: the printer writes temps as t0/t1/...).
        import re
        assert not re.search(r"\bt\d+", out)


class TestCompare:
    def test_table_lists_all_allocators(self, program, capsys):
        main(["compare", program])
        out = capsys.readouterr().out
        for name in ("second-chance", "two-pass", "coloring", "poletto"):
            assert name in out

    def test_spill_cleanup_flag_accepted(self, program, capsys):
        main(["compare", program, "--spill-cleanup"])
        assert "allocator" in capsys.readouterr().out


class TestBench:
    def test_unknown_analog_rejected(self):
        with pytest.raises(SystemExit, match="unknown analog"):
            main(["bench", "quake3"])

    def test_bench_runs_small_analog(self, capsys):
        main(["bench", "m88ksim"])
        out = capsys.readouterr().out
        assert "m88ksim" in out
        assert "second-chance" in out


def test_module_entry_point(program):
    proc = subprocess.run([sys.executable, "-m", "repro", "run", program],
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0
    assert proc.stdout.strip() == "42"
