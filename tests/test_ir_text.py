"""Printer/parser round trips and textual-format edge cases."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase, make
from repro.ir.module import Module
from repro.ir.parser import IRParseError, parse_function, parse_module, parse_reg
from repro.ir.printer import print_function, print_instr, print_module
from repro.ir.temp import PhysReg, StackSlot, Temp
from repro.ir.types import RegClass

G = RegClass.GPR
F = RegClass.FPR


class TestParseReg:
    def test_forms(self):
        assert parse_reg("t3") == Temp(G, 3)
        assert parse_reg("ft12") == Temp(F, 12)
        assert parse_reg("t5.count") == Temp(G, 5, "count")
        assert parse_reg("r0") == PhysReg(G, 0)
        assert parse_reg("f31") == PhysReg(F, 31)

    def test_rejects_garbage(self):
        for bad in ("x1", "t", "rr3", ""):
            with pytest.raises(ValueError):
                parse_reg(bad)


class TestInstrText:
    def test_operand_order_defs_first(self):
        instr = make(Op.LD, defs=[Temp(G, 5)], uses=[Temp(G, 6)], imm=8)
        assert print_instr(instr) == "ld t5, t6, 8"

    def test_store_text(self):
        instr = make(Op.ST, uses=[Temp(G, 1), Temp(G, 2)], imm=-4)
        assert print_instr(instr) == "st t1, t2, -4"

    def test_slot_text_carries_class(self):
        instr = make(Op.LDS, defs=[Temp(F, 0)], slot=StackSlot(3, F))
        assert print_instr(instr) == "lds ft0, [s3.f]"

    def test_spill_phase_suffix(self):
        instr = Instr(Op.STS, uses=[PhysReg(G, 1)], slot=StackSlot(0, G),
                      spill_phase=SpillPhase.EVICT)
        assert print_instr(instr).endswith("!evict")

    def test_call_text(self):
        instr = Instr(Op.CALL, defs=[PhysReg(G, 0)],
                      uses=[PhysReg(G, 1), PhysReg(G, 2)], callee="f")
        assert print_instr(instr) == "call @f(r1, r2) -> r0"

    def test_float_immediate_round_trips_exactly(self):
        instr = make(Op.FLI, defs=[Temp(F, 0)], imm=0.1)
        fn = _wrap(instr)
        reparsed = parse_function(print_function(fn))
        assert reparsed.blocks[0].instrs[0].imm == 0.1


def _wrap(*instrs) -> Function:
    fn = Function("w")
    builder = FunctionBuilder(fn)
    builder.new_block("entry")
    for instr in instrs:
        builder.emit(instr)
    builder.ret()
    return fn


def _sample_module() -> Module:
    module = Module()
    module.add_global("ints", G, 4, (1, -2, 3))
    module.add_global("floats", F, 2, (0.5,))
    fn = Function("main")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    x = b.li(7)
    y = b.addi(x, -3)
    cond = b.slt(y, x)
    b.br(cond, "then", "out")
    b.new_block("then")
    f = b.fli(2.5)
    g = b.fmul(f, f)
    b.print_(g)
    b.sts(y, StackSlot(0, G))
    b.lds(StackSlot(0, G), b.temp())
    b.jmp("out")
    b.new_block("out")
    b.print_(y)
    b.ret(y)
    module.add_function(fn)
    return module


class TestRoundTrip:
    def test_module_round_trip_is_fixed_point(self):
        module = _sample_module()
        text = print_module(module)
        reparsed = parse_module(text)
        assert print_module(reparsed) == text

    def test_globals_survive(self):
        module = parse_module(print_module(_sample_module()))
        assert module.globals["ints"].init == (1, -2, 3)
        assert module.globals["floats"].regclass is F

    def test_parsed_function_mints_fresh_temp_ids(self):
        fn = parse_function("func f() {\nentry:\n  li t7, 1\n  ret t7\n}")
        assert fn.new_temp(G).id == 8


class TestParseErrors:
    def test_unknown_opcode(self):
        with pytest.raises(IRParseError, match="unknown opcode"):
            parse_function("func f() {\nb:\n  frobnicate t0\n  ret\n}")

    def test_unterminated_function(self):
        with pytest.raises(IRParseError, match="unterminated"):
            parse_module("func f() {\nb:\n  ret")

    def test_instruction_outside_block(self):
        with pytest.raises(IRParseError, match="outside a block"):
            parse_module("func f() {\n  nop\n}")

    def test_trailing_operands(self):
        with pytest.raises(IRParseError, match="trailing"):
            parse_function("func f() {\nb:\n  nop t1\n  ret\n}")

    def test_branch_to_missing_immediate(self):
        with pytest.raises(IRParseError, match="missing"):
            parse_function("func f() {\nb:\n  li t0\n  ret\n}")

    def test_comments_and_blank_lines_ignored(self):
        fn = parse_function(
            "func f() {\n\nentry:\n  nop ;; a comment\n\n  ret\n}")
        assert fn.instruction_count() == 2
