"""The allocation service: protocol, cache, server round-trips.

The server fixture runs in-process (``jobs=0`` — thread executor, no
process pool spin-up) on a per-test store, so these stay tier-1 fast;
one marked test exercises the real process pool.  Cache-key stability
is checked *across interpreter processes with different hash seeds*,
because that is exactly what lets the cache persist.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.serve import (AllocationCache, AllocationServer, MAX_MODULE_BYTES,
                         ProtocolError, ServeClient, ServeError,
                         artifact_cache_key, build_corpus, decode_request,
                         run_load)
from repro.serve.protocol import MAX_LINE_BYTES, encode, error_response

MINIC = "func int main() { int a = 6; print a * 7; return a; }"

IR_REQUEST = {"op": "allocate", "minic": MINIC, "machine": "tiny:4x4",
              "allocator": "second-chance", "context": "",
              "spill_cleanup": False}


# ----------------------------------------------------------------------
# Protocol round-trips (no server needed).
# ----------------------------------------------------------------------
class TestProtocol:
    def test_valid_allocate_normalizes_defaults(self):
        doc = decode_request(encode({"op": "allocate", "minic": MINIC}))
        assert doc["op"] == "allocate"
        assert doc["machine"] == "alpha"
        assert doc["allocator"] == "second-chance"
        assert doc["spill_cleanup"] is False

    def test_op_defaults_to_allocate(self):
        doc = decode_request(json.dumps({"minic": MINIC}))
        assert doc["op"] == "allocate"

    @pytest.mark.parametrize("line,code", [
        (b"\xff\xfe not utf8 {", "bad-json"),
        (b"not json at all\n", "bad-json"),
        (b"[1, 2, 3]\n", "bad-json"),
        (json.dumps({"op": "frobnicate"}), "bad-request"),
        (json.dumps({"op": "allocate"}), "bad-request"),           # no module
        (json.dumps({"op": "allocate", "ir": "x", "minic": "y"}),
         "bad-request"),                                           # both
        (json.dumps({"op": "allocate", "minic": MINIC,
                     "machine": "vax"}), "bad-request"),
        (json.dumps({"op": "allocate", "minic": MINIC,
                     "allocator": "magic"}), "bad-request"),
        (json.dumps({"op": "allocate", "minic": MINIC,
                     "context": "stress=banana"}), "bad-request"),
    ])
    def test_malformed_requests_carry_structured_codes(self, line, code):
        with pytest.raises(ProtocolError) as err:
            decode_request(line)
        assert err.value.code == code

    def test_oversized_module_is_bounded(self):
        big = "x" * (MAX_MODULE_BYTES + 1)
        with pytest.raises(ProtocolError) as err:
            decode_request(json.dumps({"op": "allocate", "ir": big}))
        assert err.value.code == "too-large"

    def test_error_response_shape(self):
        doc = error_response("r1", "bad-json", "nope")
        assert doc == {"id": "r1", "ok": False,
                       "error": {"code": "bad-json", "message": "nope"}}


# ----------------------------------------------------------------------
# Cache keys: stable across processes and hash seeds.
# ----------------------------------------------------------------------
_KEY_PROBE = """
import sys
sys.path.insert(0, {src!r})
from repro.serve import artifact_cache_key
request = {{"op": "allocate", "id": None, "ir": "", "minic": {minic!r},
            "machine": "tiny:4x4", "allocator": "second-chance",
            "context": "remat", "spill_cleanup": True}}
key, sha = artifact_cache_key(request)
print(key.ident())
print(sha)
"""


class TestCacheKey:
    def test_key_independent_of_hash_seed_and_process(self):
        src = str(Path(__file__).resolve().parent.parent / "src")
        script = _KEY_PROBE.format(src=src, minic=MINIC)
        outputs = set()
        for seed in ("0", "424242", "1337"):
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin"})
            assert proc.returncode == 0, proc.stderr
            outputs.add(proc.stdout)
        assert len(outputs) == 1

    def test_key_distinguishes_every_input(self):
        base = dict(IR_REQUEST)
        _, sha = artifact_cache_key(base)
        for twist in ({"minic": MINIC + " "},
                      {"allocator": "coloring"},
                      {"machine": "tiny:8x8"},
                      {"context": "remat"},
                      {"spill_cleanup": True}):
            _, other = artifact_cache_key(dict(base, **twist))
            assert other != sha, twist

    def test_machine_signature_is_semantic(self):
        # The signature hashes register-file sizes, not spec spelling,
        # so the key function must parse the spec, not echo it.
        _, a = artifact_cache_key(dict(IR_REQUEST, machine="tiny:4x4"))
        _, b = artifact_cache_key(dict(IR_REQUEST, machine="tiny:04x04"))
        assert a == b


# ----------------------------------------------------------------------
# Server round-trips.
# ----------------------------------------------------------------------
@pytest.fixture
def server(tmp_path):
    srv = AllocationServer(str(tmp_path / "store"), jobs=0)
    thread = threading.Thread(target=srv.run, daemon=True)
    thread.start()
    srv.wait_ready()
    yield srv
    srv.request_shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()


@pytest.fixture
def client(server):
    with ServeClient("127.0.0.1", server.port) as c:
        yield c


class TestServer:
    def test_miss_then_hit_with_artifact_fields(self, client):
        first = client.request(dict(IR_REQUEST))
        assert first["cached"] is False
        assert "ld [" in first["code"] or "alloc" not in first  # spills ok
        assert first["allocator"] == "second-chance"
        assert first["result"] == 6
        assert first["dynamic_instructions"] > 0
        assert first["total_spill"] >= 0
        assert any(k.startswith("spill.") or "." in k
                   for k in first["spill_categories"])
        second = client.request(dict(IR_REQUEST))
        assert second["cached"] is True
        # The artifact payload is identical either way.
        for field in ("code", "result", "dynamic_instructions",
                      "spill_categories"):
            assert first[field] == second[field]

    def test_ir_and_minic_both_accepted(self, client):
        from repro.ir.printer import print_module
        from repro.lang import compile_minic
        from repro.target import tiny

        ir = print_module(compile_minic(MINIC, tiny(4, 4)))
        via_ir = client.allocate(ir=ir, machine="tiny:4x4")
        via_minic = client.allocate(minic=MINIC, machine="tiny:4x4")
        assert via_ir["result"] == via_minic["result"] == 6

    def test_malformed_request_keeps_connection_usable(self, client):
        with pytest.raises(ServeError) as err:
            client.request({"op": "allocate"})
        assert err.value.code == "bad-request"
        bad = client.send_raw(b"this is not json\n")
        assert bad["ok"] is False
        assert bad["error"]["code"] == "bad-json"
        assert client.ping()["ok"] is True          # same connection

    def test_parse_error_is_structured(self, client):
        with pytest.raises(ServeError) as err:
            client.allocate(ir="definitely not ir {{{")
        assert err.value.code == "parse-error"
        assert client.ping()["ok"] is True

    def test_oversized_line_bounded_rejection(self, server):
        # A line over the stream limit cannot be framed: the server
        # answers too-large and closes; the *server* stays up.
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=30) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"{\"op\": \"allocate\", \"ir\": \""
                         + b"x" * (MAX_LINE_BYTES + 1024) + b"\"}\n")
            response = json.loads(reader.readline())
            assert response["error"]["code"] == "too-large"
            assert reader.readline() == b""         # connection closed
        with ServeClient("127.0.0.1", server.port) as fresh:
            assert fresh.ping()["ok"] is True

    def test_disconnect_mid_request_leaves_server_healthy(self, server):
        # Fire an allocate and vanish without reading the response.
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(encode(dict(IR_REQUEST)))
        with ServeClient("127.0.0.1", server.port) as c:
            done = c.request(dict(IR_REQUEST))
            assert done["ok"] is True

    def test_stats_and_metrics(self, client):
        client.request(dict(IR_REQUEST))
        client.request(dict(IR_REQUEST))
        stats = client.stats()
        assert stats["cache_cells"] == 1
        assert stats["metrics"]["serve.cache.misses"] == 1
        assert stats["metrics"]["serve.cache.hits"] == 1
        assert stats["latency"]["count"] == 2

    def test_http_facade(self, server):
        base = f"http://127.0.0.1:{server.port}"
        health = json.load(urllib.request.urlopen(base + "/healthz"))
        assert health["ok"] is True
        post = urllib.request.Request(
            base + "/allocate", data=json.dumps(IR_REQUEST).encode(),
            headers={"Content-Type": "application/json"})
        first = json.load(urllib.request.urlopen(post))
        assert first["ok"] is True and first["cached"] is False
        second = json.load(urllib.request.urlopen(post))
        assert second["cached"] is True
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(urllib.request.Request(
                base + "/allocate", data=b'{"op": "allocate"}'))
        assert err.value.code == 400
        assert json.load(err.value)["error"]["code"] == "bad-request"
        stats = json.load(urllib.request.urlopen(base + "/stats"))
        assert stats["cache_cells"] == 1

    def test_cache_persists_across_server_restart(self, tmp_path):
        store = str(tmp_path / "store")

        def one_request(expect_cached: bool) -> None:
            srv = AllocationServer(store, jobs=0)
            thread = threading.Thread(target=srv.run, daemon=True)
            thread.start()
            srv.wait_ready()
            try:
                with ServeClient("127.0.0.1", srv.port) as c:
                    response = c.request(dict(IR_REQUEST))
                    assert response["cached"] is expect_cached
            finally:
                srv.request_shutdown()
                thread.join(timeout=30)

        one_request(expect_cached=False)
        one_request(expect_cached=True)      # a different server process
        cache = AllocationCache(store)
        assert len(cache) == 1

    def test_shutdown_op_stops_server(self, tmp_path):
        srv = AllocationServer(str(tmp_path / "store"), jobs=0)
        thread = threading.Thread(target=srv.run, daemon=True)
        thread.start()
        srv.wait_ready()
        with ServeClient("127.0.0.1", srv.port) as c:
            assert c.shutdown()["ok"] is True
        thread.join(timeout=30)
        assert not thread.is_alive()


# ----------------------------------------------------------------------
# Load generation.
# ----------------------------------------------------------------------
class TestLoad:
    def test_corpus_is_deterministic_and_dup_controlled(self):
        a = build_corpus(20, dup_ratio=0.5, seed=3)
        b = build_corpus(20, dup_ratio=0.5, seed=3)
        assert a == b
        assert len(a) == 20
        assert len({doc["ir"] for doc in a}) == 10
        assert build_corpus(20, dup_ratio=0.5, seed=4) != a

    def test_load_pass_hits_track_duplicates(self, server):
        corpus = build_corpus(12, dup_ratio=0.5, seed=5)
        cold = run_load("127.0.0.1", server.port, corpus, label="cold")
        assert cold.requests == 12
        assert cold.misses == 6 and cold.hits == 6
        warm = run_load("127.0.0.1", server.port, corpus, label="warm")
        assert warm.hits == 12 and warm.misses == 0
        assert warm.hit_rate == 1.0
        assert "100.0% hit rate" in warm.render()

    def test_process_pool_executor_end_to_end(self, tmp_path):
        # jobs=1: a real ProcessPoolExecutor carries the allocation.
        srv = AllocationServer(str(tmp_path / "store"), jobs=1)
        thread = threading.Thread(target=srv.run, daemon=True)
        thread.start()
        srv.wait_ready()
        try:
            with ServeClient("127.0.0.1", srv.port) as c:
                assert c.request(dict(IR_REQUEST))["cached"] is False
                with pytest.raises(ServeError) as err:
                    c.allocate(ir="garbage {{{")
                assert err.value.code == "parse-error"
                # The pool survived the failure.
                assert c.request(dict(IR_REQUEST))["cached"] is True
        finally:
            srv.request_shutdown()
            thread.join(timeout=30)
