"""Validator tests: one per enforced invariant."""

import pytest

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, make
from repro.ir.module import Module
from repro.ir.temp import PhysReg, StackSlot, Temp
from repro.ir.types import RegClass
from repro.ir.validate import IRValidationError, validate_function, validate_module

G = RegClass.GPR
F = RegClass.FPR


def fn_with(instrs) -> Function:
    fn = Function("f")
    fn.add_block(BasicBlock("entry", instrs))
    return fn


def test_valid_function_passes():
    validate_function(fn_with([make(Op.LI, defs=[Temp(G, 0)], imm=1),
                               Instr(Op.RET, uses=[Temp(G, 0)])]))


def test_empty_function_rejected():
    with pytest.raises(IRValidationError, match="no blocks"):
        validate_function(Function("f"))


def test_empty_block_rejected():
    with pytest.raises(IRValidationError, match="empty block"):
        validate_function(fn_with([]))


def test_missing_terminator_rejected():
    with pytest.raises(IRValidationError, match="does not end"):
        validate_function(fn_with([make(Op.NOP)]))


def test_mid_block_terminator_rejected():
    with pytest.raises(IRValidationError, match="middle"):
        validate_function(fn_with([Instr(Op.RET), make(Op.NOP), Instr(Op.RET)]))


def test_unknown_branch_target_rejected():
    with pytest.raises(IRValidationError, match="unknown label"):
        validate_function(fn_with([make(Op.JMP, targets=["nowhere"])]))


def test_operand_class_mismatch_rejected():
    bad = Instr(Op.ADD, defs=[Temp(G, 0)], uses=[Temp(G, 1), Temp(F, 2)])
    with pytest.raises(IRValidationError, match="is not GPR"):
        validate_function(fn_with([bad, Instr(Op.RET)]))


def test_operand_count_mismatch_rejected():
    bad = Instr(Op.ADD, defs=[Temp(G, 0)], uses=[Temp(G, 1)])
    with pytest.raises(IRValidationError, match="bad use count"):
        validate_function(fn_with([bad, Instr(Op.RET)]))


def test_slot_class_mismatch_rejected():
    bad = Instr(Op.LDS, defs=[Temp(G, 0)], slot=StackSlot(0, F))
    with pytest.raises(IRValidationError, match="slot class"):
        validate_function(fn_with([bad, Instr(Op.RET)]))


def test_float_immediate_type_checked():
    bad = Instr(Op.FLI, defs=[Temp(F, 0)], imm=3)  # int, not float
    with pytest.raises(IRValidationError, match="is not float"):
        validate_function(fn_with([bad, Instr(Op.RET)]))


def test_ret_with_two_operands_rejected():
    bad = Instr(Op.RET, uses=[Temp(G, 0), Temp(G, 1)])
    with pytest.raises(IRValidationError, match="ret with 2"):
        validate_function(fn_with([bad]))


def test_duplicate_labels_rejected():
    fn = Function("f")
    fn.blocks.append(BasicBlock("x", [Instr(Op.RET)]))
    fn.blocks.append(BasicBlock("x", [Instr(Op.RET)]))
    with pytest.raises(IRValidationError, match="duplicate block label"):
        validate_function(fn)


def test_physical_mode_rejects_temps():
    fn = fn_with([make(Op.LI, defs=[Temp(G, 0)], imm=1), Instr(Op.RET)])
    validate_function(fn)  # fine virtually
    with pytest.raises(IRValidationError, match="survived allocation"):
        validate_function(fn, physical=True)


def test_physical_mode_accepts_physregs():
    fn = fn_with([make(Op.LI, defs=[PhysReg(G, 0)], imm=1), Instr(Op.RET)])
    validate_function(fn, physical=True)


def test_module_checks_call_targets():
    fn = fn_with([Instr(Op.CALL, callee="missing"), Instr(Op.RET)])
    module = Module()
    module.add_function(fn)
    with pytest.raises(IRValidationError, match="unknown function"):
        validate_module(module)
