"""The result store: keys, content-addressing, persistence, metering.

These tests pin down the properties the observability layer leans on:

* cell idents and content hashes are pure functions of their inputs —
  stable across processes and ``PYTHONHASHSEED`` values, insensitive to
  option spelling order;
* records survive a close/reopen round-trip byte-for-byte and hit only
  while their code hash still matches (a changed hash is an
  *invalidation*, metered separately);
* the suite runner computes a cell exactly once: the second invocation
  over the same specs is pure cache hits;
* parallel and serial suite runs commit identical store contents.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.obs.metrics import MetricsRegistry
from repro.results.store import (CellKey, Record, ResultStore, content_hash,
                                 store_path)
from repro.results.suite import cell_code_hash, dedup_specs, run_suite

KEY = CellKey(workload="analog:wc", allocator="second-chance",
              options=(("use_holes", False), ("move_elimination", False)))


def test_ident_is_spelling_insensitive():
    flipped = CellKey(workload="analog:wc", allocator="second-chance",
                      options=(("move_elimination", False),
                               ("use_holes", False)))
    assert KEY.ident() == flipped.ident()
    assert KEY == flipped


def test_ident_distinguishes_every_coordinate():
    idents = {KEY.ident(),
              CellKey("analog:wc", "second-chance").ident(),
              CellKey("analog:wc", "coloring").ident(),
              CellKey("analog:wc", "coloring", machine="tiny:8x8").ident(),
              CellKey("analog:wc", "coloring", order="rpo").ident(),
              CellKey("analog:wc", "coloring", kind="timing",
                      reps=3).ident(),
              CellKey("analog:wc", "coloring", spill_cleanup=True).ident()}
    assert len(idents) == 7


def test_key_json_round_trip():
    assert CellKey.from_json(KEY.to_json()) == KEY
    # And via an actual JSON wire format, as the batch workers use it.
    assert CellKey.from_json(json.loads(json.dumps(KEY.to_json()))) == KEY


_HASHSEED_PROBE = """\
import json, sys
sys.path.insert(0, "src")
from repro.results.store import CellKey, content_hash
key = CellKey(workload="analog:wc", allocator="second-chance",
              options=(("use_holes", False), ("move_elimination", False)))
print(json.dumps([key.ident(), content_hash("text", "alpha/gpr=27/fpr=32")]))
"""


def test_ident_and_hash_stable_across_hashseed():
    """Neither idents nor content hashes may depend on Python's
    per-process string-hash randomization (they are persisted)."""
    outs = []
    for seed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        proc = subprocess.run([sys.executable, "-c", _HASHSEED_PROBE],
                              capture_output=True, text=True, env=env,
                              cwd=os.path.dirname(os.path.dirname(
                                  os.path.abspath(__file__))))
        assert proc.returncode == 0, proc.stderr
        outs.append(json.loads(proc.stdout))
    assert outs[0] == outs[1]
    assert outs[0][0] == KEY.ident()


def test_content_hash_boundaries_matter():
    assert content_hash("ab", "c") != content_hash("a", "bc")
    assert content_hash("x") != content_hash("x", "")


def test_store_path_resolution(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
    assert store_path(tmp_path) == tmp_path
    monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "env"))
    assert store_path() == tmp_path / "env"
    assert store_path(tmp_path) == tmp_path  # explicit arg wins


def _put_one(root, key=KEY, code_hash="h1", data=None, label="t"):
    store = ResultStore(root)
    store.begin_run(label)
    store.put(key, code_hash, data if data is not None else {"x": 1})
    store.finish_run()
    return store


def test_round_trip_across_reopen(tmp_path):
    _put_one(tmp_path, data={"dynamic_instructions": 42, "nested": {"a": 1}})
    reopened = ResultStore(tmp_path)
    assert len(reopened) == 1
    record = reopened.lookup(KEY, "h1")
    assert record is not None
    assert record.data == {"dynamic_instructions": 42, "nested": {"a": 1}}
    assert reopened.metrics.get("results.cells.hits") == 1


def test_lookup_miss_and_invalidation(tmp_path):
    store = _put_one(tmp_path)
    # Absent cell: silent miss, no metric.
    other = CellKey("analog:sort", "coloring")
    assert store.lookup(other, "h1") is None
    # Stale code hash: invalidation, metered.
    assert store.lookup(KEY, "h2") is None
    assert store.metrics.get("results.cells.invalidated") == 1
    # peek ignores the hash entirely (reporting reads the store as-is).
    assert store.peek(KEY) is not None


def test_newest_record_wins(tmp_path):
    _put_one(tmp_path, code_hash="h1", data={"x": 1})
    store = ResultStore(tmp_path)
    store.begin_run("second")
    store.put(KEY, "h2", {"x": 2})
    store.finish_run()
    reopened = ResultStore(tmp_path)
    assert reopened.lookup(KEY, "h2").data == {"x": 2}
    assert reopened.lookup(KEY, "h1") is None          # old hash is stale
    assert [r.data["x"] for r in reopened.history(KEY)] == [1, 2]


def test_run_manifests_and_ids(tmp_path):
    store = _put_one(tmp_path, label="first")
    assert store.next_run_id() == "r0002"
    manifest = store.manifest("r0001")
    assert manifest is not None and manifest["label"] == "first"
    assert list(manifest["cells"]) == [KEY.ident()]
    # Segments are append-only: one file per run.
    store.begin_run("second")
    store.note_hit(KEY, store.peek(KEY))
    store.finish_run({"hits": 1})
    assert len(list((tmp_path / "segments").glob("seg-*.jsonl"))) == 2
    assert ResultStore(tmp_path).manifest("r0002")["stats"] == {"hits": 1}


def test_schema_mismatch_records_are_ignored(tmp_path):
    _put_one(tmp_path)
    stale = Record(seq=99, run="r0001", ident=KEY.ident(), code_hash="h1",
                   key=KEY, data={"x": 9}, schema=0)
    with open(tmp_path / "segments" / "seg-r0001.jsonl", "a") as fh:
        fh.write(json.dumps(stale.to_json()) + "\n")
    reopened = ResultStore(tmp_path)
    assert reopened.peek(KEY).data == {"x": 1}


def test_metrics_snapshot_restore_round_trip():
    registry = MetricsRegistry()
    registry.bump("a.b")
    registry.bump("a.b")
    registry.bump("c.d", 2.5)
    snap = registry.snapshot()
    registry.bump("a.b")
    assert registry.restore(snap) is registry
    assert registry.snapshot() == snap == {"a.b": 2, "c.d": 2.5}
    # restore() copies: mutating the registry leaves the snapshot alone.
    registry.bump("a.b")
    assert snap["a.b"] == 2


# ----------------------------------------------------------------------
# The suite runner against a real (tiny) workload.
# ----------------------------------------------------------------------
TINY_SPECS = dedup_specs([
    CellKey(workload="analog:wc", allocator="two-pass", machine="tiny:8x8"),
    CellKey(workload="analog:wc", allocator="second-chance",
            machine="tiny:8x8"),
])


def test_suite_second_run_is_pure_hits(tmp_path):
    store = ResultStore(tmp_path)
    first = run_suite(TINY_SPECS, store, jobs=1, label="first")
    assert (first.cells, first.computed, first.hits) == (2, 2, 0)
    # Same store object *and* a fresh open must both be pure hits.
    second = run_suite(TINY_SPECS, store, jobs=1, label="second")
    assert (second.computed, second.hits) == (0, 2)
    reopened = ResultStore(tmp_path)
    third = run_suite(TINY_SPECS, reopened, jobs=1, label="third")
    assert (third.computed, third.hits) == (0, 2)
    assert reopened.metrics.get("results.cells.hits") == 2
    # The quality payload carries the joined observability data.
    record = reopened.peek(TINY_SPECS[0])
    assert record.data["dynamic_instructions"] > 0
    assert record.data["metrics"]
    assert "profile" in record.data


def test_suite_invalidates_on_code_hash_change(tmp_path):
    store = ResultStore(tmp_path)
    run_suite(TINY_SPECS[:1], store, jobs=1)
    # Rewrite the stored record with a stale hash, as if the workload
    # generator changed underneath the store.
    record = store.peek(TINY_SPECS[0])
    store.begin_run("tamper")
    store.put(record.key, "stale" + record.code_hash[5:], record.data)
    store.finish_run()
    outcome = run_suite(TINY_SPECS[:1], store, jobs=1)
    assert (outcome.computed, outcome.invalidated) == (1, 1)
    # And the recompute restored the true hash.
    assert store.peek(TINY_SPECS[0]).code_hash == record.code_hash


def test_cell_code_hash_tracks_workload_and_machine():
    from repro.results.suite import build_workload, machine_signature

    module, machine = build_workload("analog:wc", "tiny:8x8", "layout")
    from repro.ir.printer import print_module
    text = print_module(module)
    h = cell_code_hash(text, machine)
    assert h == cell_code_hash(text, machine)
    assert h != cell_code_hash(text + "\n; edited", machine)
    other = build_workload("analog:wc", "tiny:4x4", "layout")[1]
    assert machine_signature(machine) != machine_signature(other)
    assert h != cell_code_hash(text, other)
