"""DCE, the move peephole, and the post-allocation verifier."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, make
from repro.ir.module import Module
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.passes.dce import eliminate_dead_code
from repro.passes.peephole import remove_redundant_moves
from repro.passes.verify_alloc import AllocationVerifyError, verify_allocation
from repro.sim import simulate
from repro.target import tiny

G = RegClass.GPR


class TestDCE:
    def test_removes_unused_chain_transitively(self):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        a = b.li(1)
        c = b.add(a, a)       # only feeds the dead mov below
        b.mov(c)              # dead
        kept = b.li(5)
        b.print_(kept)
        b.ret()
        removed = eliminate_dead_code(fn)
        assert removed == 3
        assert fn.instruction_count() == 3  # li, print, ret

    def test_keeps_faulting_and_effectful_ops(self):
        module = Module()
        arr = module.add_global("a", G, 2, (9,))
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        base = b.li(arr.base)
        b.ld(base, 0)                      # result unused, but may fault
        b.div(base, b.li(0))               # would fault: must stay
        b.ret()
        module.add_function(fn)
        before = fn.instruction_count()
        eliminate_dead_code(fn)
        # Only nothing or pure values may vanish: ld, div, and their
        # operands are all still live through the kept instructions.
        assert any(i.op is Op.LD for i in fn.instructions())
        assert any(i.op is Op.DIV for i in fn.instructions())

    def test_respects_cross_block_liveness(self):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        x = b.li(3)
        b.jmp("next")
        b.new_block("next")
        b.print_(x)
        b.ret()
        eliminate_dead_code(fn)
        assert any(i.op is Op.LI for i in fn.instructions())

    def test_removes_nops(self):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.nop()
        b.ret()
        assert eliminate_dead_code(fn) == 1

    def test_physical_defs_never_removed(self):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.emit(Instr(Op.LI, defs=[PhysReg(G, 0)], imm=1))
        b.ret()
        assert eliminate_dead_code(fn) == 0


class TestPeephole:
    def test_removes_self_moves_only(self):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        r1, r2 = PhysReg(G, 1), PhysReg(G, 2)
        b.emit(Instr(Op.MOV, defs=[r1], uses=[r1]))  # removable
        b.emit(Instr(Op.MOV, defs=[r2], uses=[r1]))  # real copy
        b.ret()
        assert remove_redundant_moves(fn) == 1
        assert fn.instruction_count() == 2

    def test_execution_unchanged(self, tiny_machine):
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        r1 = PhysReg(G, 1)
        b.emit(Instr(Op.LI, defs=[r1], imm=5))
        b.emit(Instr(Op.MOV, defs=[r1], uses=[r1]))
        b.emit(Instr(Op.PRINT, uses=[r1]))
        b.ret()
        module.add_function(fn)
        before = simulate(module, tiny_machine).output
        remove_redundant_moves(fn)
        after = simulate(module, tiny_machine).output
        assert before == after == [5]


class TestVerifyAllocation:
    def test_rejects_surviving_temp(self, tiny_machine):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.li(1)
        b.ret()
        with pytest.raises(AllocationVerifyError, match="survived"):
            verify_allocation(fn, tiny_machine)

    def test_rejects_out_of_range_register(self, tiny_machine):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.emit(Instr(Op.LI, defs=[PhysReg(G, 99)], imm=1))
        b.ret()
        with pytest.raises(AllocationVerifyError, match="does not exist"):
            verify_allocation(fn, tiny_machine)

    def test_accepts_clean_code(self, tiny_machine):
        fn = Function("f")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.emit(Instr(Op.LI, defs=[PhysReg(G, 1)], imm=1))
        b.ret()
        verify_allocation(fn, tiny_machine)
